//! The schema intermediate representation: exactly the keyword inventory of
//! the paper's Table 1, plus `definitions`/`$ref` (§5.3).
//!
//! Semantics follows the paper's §5.1 core (formalised in \[29\]):
//!
//! * type-specific keywords constrain only values of the matching type
//!   (e.g. `pattern` is vacuous on numbers);
//! * `items` without `additionalItems` bounds the array length by the
//!   `items` list length (the paper's reading — the appendix translation
//!   inserts `□_{n:∞}⊥`); with `additionalItems`, extra elements must
//!   satisfy it.

use std::fmt;

use jsondata::Json;
use relex::Regex;

/// `"type"` keyword values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaType {
    /// `"string"`
    String,
    /// `"number"`
    Number,
    /// `"object"`
    Object,
    /// `"array"`
    Array,
}

impl fmt::Display for SchemaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemaType::String => "string",
            SchemaType::Number => "number",
            SchemaType::Object => "object",
            SchemaType::Array => "array",
        };
        f.write_str(s)
    }
}

/// A parsed JSON Schema (Table 1 fragment).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    /// `"type"`.
    pub ty: Option<SchemaType>,
    /// `"pattern"` (string schemas): source text and parsed regex.
    pub pattern: Option<(String, Regex)>,
    /// `"minimum"` (number schemas).
    pub minimum: Option<u64>,
    /// `"maximum"` (number schemas).
    pub maximum: Option<u64>,
    /// `"multipleOf"` (number schemas).
    pub multiple_of: Option<u64>,
    /// `"minProperties"` (object schemas).
    pub min_properties: Option<u64>,
    /// `"maxProperties"` (object schemas).
    pub max_properties: Option<u64>,
    /// `"required"` (object schemas).
    pub required: Vec<String>,
    /// `"properties"` (object schemas).
    pub properties: Vec<(String, Schema)>,
    /// `"patternProperties"` (object schemas): source, regex, subschema.
    pub pattern_properties: Vec<(String, Regex, Schema)>,
    /// `"additionalProperties"` (object schemas).
    pub additional_properties: Option<Box<Schema>>,
    /// `"items"` (array schemas, positional).
    pub items: Vec<Schema>,
    /// `"additionalItems"` (array schemas).
    pub additional_items: Option<Box<Schema>>,
    /// `"uniqueItems": true` (array schemas).
    pub unique_items: bool,
    /// `"anyOf"`.
    pub any_of: Vec<Schema>,
    /// `"allOf"`.
    pub all_of: Vec<Schema>,
    /// `"not"`.
    pub not: Option<Box<Schema>>,
    /// `"enum"`.
    pub enumeration: Vec<Json>,
    /// `"$ref"` (e.g. `#/definitions/email`).
    pub reference: Option<String>,
    /// `"definitions"`.
    pub definitions: Vec<(String, Schema)>,
}

/// A schema-parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    /// JSON-pointer-ish location inside the schema document.
    pub at: String,
    /// Message.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error at `{}`: {}", self.at, self.message)
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Parses a schema from its JSON document form.
    pub fn parse(doc: &Json) -> Result<Schema, SchemaError> {
        parse_at(doc, "#")
    }

    /// Parses a schema from JSON text.
    pub fn parse_str(src: &str) -> Result<Schema, SchemaError> {
        let doc = jsondata::parse(src).map_err(|e| SchemaError {
            at: "#".into(),
            message: e.to_string(),
        })?;
        Schema::parse(&doc)
    }

    /// The number of keywords used anywhere (a size measure for benches).
    pub fn keyword_count(&self) -> usize {
        let mut n = 0;
        n += usize::from(self.ty.is_some());
        n += usize::from(self.pattern.is_some());
        n += usize::from(self.minimum.is_some());
        n += usize::from(self.maximum.is_some());
        n += usize::from(self.multiple_of.is_some());
        n += usize::from(self.min_properties.is_some());
        n += usize::from(self.max_properties.is_some());
        n += usize::from(!self.required.is_empty());
        n += usize::from(self.unique_items);
        n += usize::from(!self.enumeration.is_empty());
        n += usize::from(self.reference.is_some());
        for (_, s) in &self.properties {
            n += 1 + s.keyword_count();
        }
        for (_, _, s) in &self.pattern_properties {
            n += 1 + s.keyword_count();
        }
        for s in self
            .additional_properties
            .iter()
            .chain(self.additional_items.iter())
            .chain(self.not.iter())
        {
            n += 1 + s.keyword_count();
        }
        for s in self
            .items
            .iter()
            .chain(self.any_of.iter())
            .chain(self.all_of.iter())
        {
            n += 1 + s.keyword_count();
        }
        for (_, s) in &self.definitions {
            n += 1 + s.keyword_count();
        }
        n
    }
}

fn err(at: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        at: at.to_owned(),
        message: message.into(),
    }
}

fn parse_at(doc: &Json, at: &str) -> Result<Schema, SchemaError> {
    let Some(obj) = doc.as_object() else {
        return Err(err(at, "a schema must be a JSON object"));
    };
    let mut schema = Schema::default();
    for (key, value) in obj.iter() {
        let here = format!("{at}/{key}");
        match key {
            "type" => {
                schema.ty = Some(match value.as_str() {
                    Some("string") => SchemaType::String,
                    Some("number") => SchemaType::Number,
                    Some("object") => SchemaType::Object,
                    Some("array") => SchemaType::Array,
                    _ => {
                        return Err(err(
                            &here,
                            "type must be one of \"string\", \"number\", \"object\", \"array\"",
                        ))
                    }
                });
            }
            "pattern" => {
                let Some(src) = value.as_str() else {
                    return Err(err(&here, "pattern must be a string"));
                };
                let re = Regex::parse(src).map_err(|e| err(&here, e.to_string()))?;
                schema.pattern = Some((src.to_owned(), re));
            }
            "minimum" => schema.minimum = Some(nat(value, &here)?),
            "maximum" => schema.maximum = Some(nat(value, &here)?),
            "multipleOf" => {
                let v = nat(value, &here)?;
                if v == 0 {
                    return Err(err(&here, "multipleOf must be positive"));
                }
                schema.multiple_of = Some(v);
            }
            "minProperties" => schema.min_properties = Some(nat(value, &here)?),
            "maxProperties" => schema.max_properties = Some(nat(value, &here)?),
            "required" => {
                let Some(items) = value.as_array() else {
                    return Err(err(&here, "required must be an array of strings"));
                };
                for (i, item) in items.iter().enumerate() {
                    let Some(s) = item.as_str() else {
                        return Err(err(
                            &format!("{here}/{i}"),
                            "required entries must be strings",
                        ));
                    };
                    schema.required.push(s.to_owned());
                }
            }
            "properties" => {
                let Some(props) = value.as_object() else {
                    return Err(err(&here, "properties must be an object"));
                };
                for (k, sub) in props.iter() {
                    schema
                        .properties
                        .push((k.to_owned(), parse_at(sub, &format!("{here}/{k}"))?));
                }
            }
            "patternProperties" => {
                let Some(props) = value.as_object() else {
                    return Err(err(&here, "patternProperties must be an object"));
                };
                for (src, sub) in props.iter() {
                    let re = Regex::parse(src)
                        .map_err(|e| err(&format!("{here}/{src}"), e.to_string()))?;
                    schema.pattern_properties.push((
                        src.to_owned(),
                        re,
                        parse_at(sub, &format!("{here}/{src}"))?,
                    ));
                }
            }
            "additionalProperties" => {
                schema.additional_properties = Some(Box::new(parse_at(value, &here)?));
            }
            "items" => {
                let Some(items) = value.as_array() else {
                    return Err(err(
                        &here,
                        "items must be an array of schemas (Table 1 form)",
                    ));
                };
                for (i, sub) in items.iter().enumerate() {
                    schema.items.push(parse_at(sub, &format!("{here}/{i}"))?);
                }
            }
            "additionalItems" => {
                schema.additional_items = Some(Box::new(parse_at(value, &here)?));
            }
            "uniqueItems" => {
                // The fragment has no booleans; Table 1 only ever uses
                // `"uniqueItems": true`, which we encode as the string "true"
                // or the number 1 in documents.
                match value {
                    Json::Str(s) if s == "true" => schema.unique_items = true,
                    Json::Num(1) => schema.unique_items = true,
                    Json::Str(s) if s == "false" => schema.unique_items = false,
                    Json::Num(0) => schema.unique_items = false,
                    _ => {
                        return Err(err(
                            &here,
                            "uniqueItems must be \"true\"/\"false\" (the model has no boolean literals)",
                        ))
                    }
                }
            }
            "anyOf" => schema.any_of = sub_list(value, &here)?,
            "allOf" => schema.all_of = sub_list(value, &here)?,
            "not" => schema.not = Some(Box::new(parse_at(value, &here)?)),
            "enum" => {
                let Some(items) = value.as_array() else {
                    return Err(err(&here, "enum must be an array"));
                };
                schema.enumeration = items.to_vec();
            }
            "$ref" => {
                let Some(r) = value.as_str() else {
                    return Err(err(&here, "$ref must be a string"));
                };
                schema.reference = Some(r.to_owned());
            }
            "definitions" => {
                let Some(defs) = value.as_object() else {
                    return Err(err(&here, "definitions must be an object"));
                };
                for (name, sub) in defs.iter() {
                    schema
                        .definitions
                        .push((name.to_owned(), parse_at(sub, &format!("{here}/{name}"))?));
                }
            }
            other => {
                return Err(err(
                    &here,
                    format!("unknown keyword {other:?} (the Table 1 fragment is exhaustive)"),
                ))
            }
        }
    }
    Ok(schema)
}

fn nat(value: &Json, at: &str) -> Result<u64, SchemaError> {
    value
        .as_num()
        .ok_or_else(|| err(at, "expected a natural number"))
}

fn sub_list(value: &Json, at: &str) -> Result<Vec<Schema>, SchemaError> {
    let Some(items) = value.as_array() else {
        return Err(err(at, "expected an array of schemas"));
    };
    items
        .iter()
        .enumerate()
        .map(|(i, sub)| parse_at(sub, &format!("{at}/{i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_string_schema() {
        let s = Schema::parse_str(r#"{"type": "string", "pattern": "(0|1)+"}"#).unwrap();
        assert_eq!(s.ty, Some(SchemaType::String));
        assert!(s.pattern.is_some());
    }

    #[test]
    fn parses_paper_object_schema() {
        // §5.1's object example.
        let s = Schema::parse_str(
            r#"{
            "type": "object",
            "properties": {"name": {"type": "string"}},
            "patternProperties": {"a(b|c)a": {"type": "number", "multipleOf": 2}},
            "additionalProperties": {"type": "number", "minimum": 1, "maximum": 1}
        }"#,
        )
        .unwrap();
        assert_eq!(s.properties.len(), 1);
        assert_eq!(s.pattern_properties.len(), 1);
        assert!(s.additional_properties.is_some());
    }

    #[test]
    fn parses_paper_array_schema() {
        let s = Schema::parse_str(
            r#"{
            "type": "array",
            "items": [{"type": "string"}, {"type": "string"}],
            "additionalItems": {"type": "number"},
            "uniqueItems": "true"
        }"#,
        )
        .unwrap();
        assert_eq!(s.items.len(), 2);
        assert!(s.unique_items);
    }

    #[test]
    fn parses_refs_and_definitions() {
        let s = Schema::parse_str(
            r##"{
            "definitions": {"email": {"type": "string", "pattern": "[A-z]*@ciws\\.cl"}},
            "not": {"$ref": "#/definitions/email"}
        }"##,
        )
        .unwrap();
        assert_eq!(s.definitions.len(), 1);
        assert_eq!(
            s.not.unwrap().reference.as_deref(),
            Some("#/definitions/email")
        );
    }

    #[test]
    fn rejects_unknown_keywords_and_bad_values() {
        assert!(Schema::parse_str(r#"{"type": "boolean"}"#).is_err());
        assert!(Schema::parse_str(r#"{"frobnicate": 1}"#).is_err());
        assert!(Schema::parse_str(r#"{"multipleOf": 0}"#).is_err());
        assert!(Schema::parse_str(r#"{"pattern": "("}"#).is_err());
        assert!(Schema::parse_str(r#"{"required": [1]}"#).is_err());
        assert!(Schema::parse_str("[]").is_err());
        let e = Schema::parse_str(r#"{"properties": {"a": {"zzz": 1}}}"#).unwrap_err();
        assert!(e.at.contains("/properties/a/zzz"), "{e}");
    }

    #[test]
    fn keyword_count_recurses() {
        let s = Schema::parse_str(
            r#"{"type": "object", "properties": {"a": {"type": "number", "minimum": 3}}}"#,
        )
        .unwrap();
        assert_eq!(s.keyword_count(), 4);
    }
}
