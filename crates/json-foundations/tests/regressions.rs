//! Regression tests for bugs found (and fixed) during development — each
//! case pins behaviour that once diverged.

use jnl::ast::{Binary as B, Unary as U};
use jsl::ast::{Jsl as J, NodeTest as T};
use json_foundations::prelude::*;

/// `EQ(α, β)` identifying a node with its own descendant used to send the
/// pattern-tree unifier into rational-tree divergence; it must terminate
/// and report UNSAT (no finite tree equals a strict subtree of itself).
#[test]
fn eq_pair_with_ancestor_terminates_unsat() {
    let phi = jnl::parse_unary(r#"eqpair(@1 ; @0 ; @"b", @1)"#).unwrap();
    assert_eq!(jnl::sat_deterministic(&phi), jnl::SatResult::Unsat);
    // The reflexive case is satisfiable (same path on both sides).
    let refl = jnl::parse_unary(r#"eqpair(@"a", @"a")"#).unwrap();
    assert!(jnl::sat_deterministic(&refl).is_sat());
    // Mutually-entangled equations across siblings still terminate.
    let tangled = U::and(vec![
        U::eq_pair(B::key("l"), B::compose(vec![B::key("r"), B::key("x")])),
        U::eq_pair(B::key("r"), B::compose(vec![B::key("l"), B::key("x")])),
    ]);
    let result = jnl::sat_deterministic(&tangled);
    // Terminates with a definite or honest answer; a witness, if any,
    // must verify.
    if let jnl::SatResult::Sat(w) = &result {
        let t = JsonTree::build(w);
        assert!(jnl::eval::check_root(&t, &tangled));
    }
}

/// Tautological QBF clauses (x ∨ ¬x) once produced a bogus "falsifying
/// path" constraint that flipped verdicts.
#[test]
fn qbf_tautological_clauses_are_no_constraints() {
    use jsl::reduce::qbf::{Qbf, Quant};
    let q = Qbf {
        prefix: vec![Quant::Forall],
        clauses: vec![vec![(0, true), (0, false)]],
    };
    assert!(q.brute_force());
    assert_eq!(q.solve_via_jsl(), Some(true));
}

/// `EQ(α, β)`-merged pattern nodes must concretise identically — fresh
/// leaves included (the witness for `eqpair(@"l", @"r")` was once
/// `{"l": "#fresh1", "r": "#fresh2"}`).
#[test]
fn merged_nodes_concretise_identically() {
    let phi = jnl::parse_unary(r#"eqpair(@"l", @"r")"#).unwrap();
    match jnl::sat_deterministic(&phi) {
        jnl::SatResult::Sat(w) => assert_eq!(w.get("l"), w.get("r"), "witness {w}"),
        other => panic!("expected Sat, got {other:?}"),
    }
}

/// ¬Min(i) must not leak a positive `Min`-style kind constraint onto
/// non-number nodes: an object satisfies ¬Min(3) vacuously.
#[test]
fn negated_numeric_tests_do_not_constrain_other_kinds() {
    let phi = J::and(vec![J::Test(T::Obj), J::not(J::Test(T::Min(3)))]);
    match jsl::sat_jsl(&phi) {
        jsl::JslSatResult::Sat(w) => assert!(w.is_object()),
        other => panic!("expected Sat, got {other:?}"),
    }
    // And for numbers it must bite: Int ∧ ¬Min(0) is unsatisfiable over ℕ.
    let phi = J::and(vec![J::Test(T::Int), J::not(J::Test(T::Min(0)))]);
    assert!(jsl::sat_jsl(&phi).is_unsat());
}

/// The naive `Unique` baseline must not short-circuit its complexity away
/// on all-distinct arrays, and both strategies must agree near collisions
/// of different kinds (`1` vs `"1"` vs `[1]`).
#[test]
fn unique_strategies_agree_on_lookalikes() {
    use jsl::{EvalOptions, UniqueStrategy};
    let phi = J::Test(T::Unique);
    for src in [
        r#"[1, "1", [1], {"1": 1}]"#,
        r#"[[1], [1]]"#,
        r#"[{"a":1},{"a":1}]"#,
    ] {
        let tree = JsonTree::build(&parse(src).unwrap());
        let a = jsl::eval::evaluate_with(
            &tree,
            &phi,
            EvalOptions {
                unique: UniqueStrategy::NaivePairwise,
                ..Default::default()
            },
        );
        let b = jsl::eval::evaluate_with(
            &tree,
            &phi,
            EvalOptions {
                unique: UniqueStrategy::Canonical,
                ..Default::default()
            },
        );
        assert_eq!(a, b, "doc {src}");
    }
}

/// A JSONPath `*` is not a single JNL binary formula (no union in
/// Definition 1); the branch compilation must still agree with direct
/// selection on mixed object/array levels.
#[test]
fn jsonpath_wildcard_branches_cover_both_axes() {
    let doc = parse(r#"{"o": {"k": 1}, "a": [2, 3]}"#).unwrap();
    let tree = JsonTree::build(&doc);
    let p = jsonpath::JsonPath::parse("$.*.*").unwrap();
    assert_eq!(p.to_jnl_branches().len(), 4, "2 wildcards → 4 branches");
    let mut direct = p.select_nodes(&tree);
    let mut via = p.select_nodes_via_jnl(&tree);
    direct.sort();
    via.sort();
    assert_eq!(direct, via);
    assert_eq!(direct.len(), 3); // 1, 2, 3
}

/// The rank preprocessing for huge indices must not be applied under EQ
/// operators (it would desynchronise embedded documents): the solver
/// reports Unknown rather than a wrong verdict.
#[test]
fn rank_preprocessing_refuses_equality_mixes() {
    let phi = U::and(vec![
        U::exists(B::compose(vec![B::key("a"), B::index(1_000_000)])),
        U::eq_doc(B::key("a"), parse("[1,2,3]").unwrap()),
    ]);
    match jnl::sat_deterministic(&phi) {
        jnl::SatResult::Unknown(_) => {}
        jnl::SatResult::Unsat => {} // also sound (the doc has no index 10^6)
        jnl::SatResult::Sat(w) => panic!("cannot be satisfiable: {w}"),
    }
}

/// Deterministic-looking sugar (singleton regexes, `i:i` ranges) must be
/// accepted by the linear engine, not misrouted.
#[test]
fn effectively_deterministic_sugar_stays_linear() {
    let doc = parse(r#"{"k": [5, 6]}"#).unwrap();
    let tree = JsonTree::build(&doc);
    let phi = U::eq_doc(
        B::compose(vec![
            B::key_regex(relex::Regex::literal("k")),
            B::range(1, Some(1)),
        ]),
        parse("6").unwrap(),
    );
    assert!(jnl::eval::linear::eval(&tree, &phi).unwrap()[0]);
}

/// Streaming and tree evaluation agreed only after `□`-vacuity on
/// mismatched kinds was handled (box-over-keys at an array node is true).
#[test]
fn streaming_box_vacuity() {
    use jsl::streaming::{events_of, validate_stream};
    let phi = J::box_any_key(J::falsity());
    for src in ["[1, 2]", "\"s\"", "7", "{}"] {
        let doc = parse(src).unwrap();
        let tree = JsonTree::build(&doc);
        assert_eq!(
            validate_stream(&phi, events_of(&doc)).unwrap(),
            jsl::eval::check_root(&tree, &phi),
            "doc {src}"
        );
    }
    // {} has a key-child... no: {} has none, but {"k":1} does.
    let doc = parse(r#"{"k": 1}"#).unwrap();
    assert!(!validate_stream(&phi, events_of(&doc)).unwrap());
}

/// Empty-schema and empty-formula degenerate cases across the stack.
#[test]
fn degenerate_cases() {
    // Empty schema accepts everything, as does ⊤ everywhere.
    let schema = jschema::Schema::parse_str("{}").unwrap();
    let delta = jschema::schema_to_jsl(&schema).unwrap();
    for src in ["0", "{}", "[]", r#""""#] {
        let doc = parse(src).unwrap();
        assert!(jschema::is_valid(&schema, &doc).unwrap());
        assert!(delta.check_root(&JsonTree::build(&doc)));
    }
    // ⊥ is unsatisfiable in every engine.
    assert!(jnl::sat_deterministic(&U::not(U::True)).is_unsat());
    assert!(jsl::sat_jsl(&J::falsity()).is_unsat());
    // The empty JSONPath selects the root.
    let doc = parse("{}").unwrap();
    assert_eq!(
        jsonpath::JsonPath::parse("$").unwrap().select(&doc),
        vec![doc]
    );
}

/// The fused parser's duplicate-key probe must stay near-linear on wide
/// objects (the `Sym`-pair hash probe, mirroring the O(n²)→O(n) fix the
/// value parser got): a 50k-key object parses straight to a tree in one
/// pass, and a duplicate appended at the end is still rejected at the
/// position of the second occurrence — identically by both paths.
#[test]
fn fused_wide_object_duplicate_check_is_near_linear() {
    let n = 50_000usize;
    let mut src = String::with_capacity(n * 12);
    src.push('{');
    for i in 0..n {
        if i > 0 {
            src.push(',');
        }
        src.push_str(&format!("\"key{i}\":{i}"));
    }
    src.push('}');
    let tree = jsondata::parse_to_tree(&src).unwrap();
    assert_eq!(tree.child_count(tree.root()), n);
    assert_eq!(tree.node_count(), n + 1);
    // Keys are interned once each and spans are symbol-sorted.
    assert_eq!(tree.interner().len(), n);
    assert!(tree.obj_syms(tree.root()).windows(2).all(|w| w[0] < w[1]));
    // One duplicate appended: rejected with the second occurrence's
    // position, identically to the value parser.
    let dup = format!("{}, \"key0\": 0}}", &src[..src.len() - 1]);
    let e_fused = jsondata::parse_to_tree(&dup).unwrap_err();
    let e_value = parse(&dup).unwrap_err();
    assert_eq!(e_fused, e_value);
    assert_eq!(e_fused.position.offset, dup.len() - 10);
}
