//! The Proposition 2 lower-bound reduction: 3SAT → satisfiability of
//! deterministic JNL, using only positive, equality-free formulas.
//!
//! For each propositional variable `p` the formula
//! `θ_p = [X_p⟨[X_0]⟩] ∨ [X_p⟨[X_w]⟩]` allows the value under key `p` to be
//! an array (meaning *true*) or an object with the fresh key `w`
//! (meaning *false*) — JSON's key determinism makes the two exclusive.
//! Each clause `C = (ℓ_a ∨ ℓ_b ∨ ℓ_c)` becomes
//! `γ_C = [X_a⟨S_a⟩] ∨ [X_b⟨S_b⟩] ∨ [X_c⟨S_c⟩]` with `S_x = [X_0]` for a
//! positive literal and `S_x = [X_w]` for a negative one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jsondata::Json;

use crate::ast::{Binary, Unary};

/// The fresh key marking "false" (cannot collide with variable keys, which
/// are generated as `p0`, `p1`, …).
pub const FALSE_MARKER_KEY: &str = "w";

/// A 3CNF formula over variables `0..n_vars`; each literal is `(var,
/// positive)`.
#[derive(Debug, Clone)]
pub struct ThreeSat {
    /// Number of variables.
    pub n_vars: usize,
    /// Clauses of up to three literals.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

impl ThreeSat {
    /// A uniformly random instance with `n_clauses` clauses of exactly
    /// three literals.
    pub fn random(n_vars: usize, n_clauses: usize, seed: u64) -> ThreeSat {
        let mut rng = StdRng::seed_from_u64(seed);
        let clauses = (0..n_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        ThreeSat { n_vars, clauses }
    }

    /// Brute-force satisfiability (reference oracle; exponential).
    pub fn brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.n_vars <= 24, "brute force limited to 24 variables");
        for bits in 0u64..(1 << self.n_vars) {
            let assignment: Vec<bool> = (0..self.n_vars).map(|v| bits >> v & 1 == 1).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Evaluates an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| assignment[v] == pos))
    }

    /// The key used for variable `v`.
    pub fn var_key(v: usize) -> String {
        format!("p{v}")
    }

    /// The Proposition 2 encoding into deterministic JNL.
    pub fn to_jnl(&self) -> Unary {
        let truth = |positive: bool| -> Unary {
            // ⟨[X_0]⟩ for true (array), ⟨[X_w]⟩ for false (object).
            if positive {
                Unary::exists(Binary::index(0))
            } else {
                Unary::exists(Binary::key(FALSE_MARKER_KEY))
            }
        };
        let lit = |v: usize, positive: bool| -> Unary {
            Unary::exists(Binary::compose(vec![
                Binary::key(Self::var_key(v)),
                Binary::test(truth(positive)),
            ]))
        };
        let mut parts = Vec::new();
        for v in 0..self.n_vars {
            parts.push(Unary::or(vec![lit(v, true), lit(v, false)]));
        }
        for c in &self.clauses {
            parts.push(Unary::or(c.iter().map(|&(v, p)| lit(v, p)).collect()));
        }
        Unary::and(parts)
    }

    /// Reads the assignment off a witness document produced by the solver.
    pub fn decode_witness(&self, witness: &Json) -> Vec<bool> {
        (0..self.n_vars)
            .map(|v| {
                witness
                    .get(&Self::var_key(v))
                    .map(Json::is_array)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Builds the canonical witness document for an assignment.
    pub fn witness_for(&self, assignment: &[bool]) -> Json {
        Json::object(
            (0..self.n_vars)
                .map(|v| {
                    let val = if assignment[v] {
                        Json::Array(vec![Json::Num(1)])
                    } else {
                        Json::object(vec![(FALSE_MARKER_KEY.to_owned(), Json::Num(1))])
                            .expect("single key")
                    };
                    (Self::var_key(v), val)
                })
                .collect(),
        )
        .expect("variable keys are distinct")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::det::sat_deterministic;
    use crate::sat::SatResult;
    use jsondata::JsonTree;

    #[test]
    fn encoding_is_positive_and_equality_free() {
        let inst = ThreeSat::random(4, 8, 1);
        let phi = inst.to_jnl();
        let f = phi.fragment();
        assert!(f.is_deterministic());
        assert!(!f.negation && !f.eq_pair);
    }

    #[test]
    fn assignment_witness_satisfies_encoding() {
        let inst = ThreeSat {
            n_vars: 3,
            clauses: vec![
                vec![(0, true), (1, false), (2, true)],
                vec![(0, false), (1, true), (2, true)],
            ],
        };
        let assignment = vec![true, true, false];
        assert!(inst.eval(&assignment));
        let w = inst.witness_for(&assignment);
        let t = JsonTree::build(&w);
        assert!(crate::eval::evaluate(&t, &inst.to_jnl())[0]);
        assert_eq!(inst.decode_witness(&w), assignment);
    }

    #[test]
    fn solver_agrees_with_brute_force() {
        for seed in 0..12 {
            // Dense enough that both SAT and UNSAT instances occur.
            let inst = ThreeSat::random(5, 24, seed);
            let expected = inst.brute_force().is_some();
            match sat_deterministic(&inst.to_jnl()) {
                SatResult::Sat(w) => {
                    assert!(expected, "seed {seed}: solver said SAT, brute force UNSAT");
                    let assignment = inst.decode_witness(&w);
                    assert!(
                        inst.eval(&assignment),
                        "seed {seed}: decoded assignment invalid"
                    );
                }
                SatResult::Unsat => {
                    assert!(!expected, "seed {seed}: solver said UNSAT, brute force SAT")
                }
                SatResult::Unknown(r) => panic!("seed {seed}: solver gave up: {r}"),
            }
        }
    }

    #[test]
    fn unsatisfiable_core() {
        // (p) ∧ (¬p) as two unit-ish clauses via duplicated literals.
        let inst = ThreeSat {
            n_vars: 1,
            clauses: vec![
                vec![(0, true), (0, true), (0, true)],
                vec![(0, false), (0, false), (0, false)],
            ],
        };
        assert!(inst.brute_force().is_none());
        assert_eq!(sat_deterministic(&inst.to_jnl()), SatResult::Unsat);
    }
}
