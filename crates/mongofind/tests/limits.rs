//! Ingestion-limit regression suite: `parse_str_with_limits` /
//! `insert_str_with_limits` must reject depth- and size-violating
//! documents with a structured [`jguard::QueryError::ParseLimit`] and
//! leave the collection byte-identically queryable.

use jguard::QueryError;
use jsondata::{gen, ParseErrorKind, ParseLimits};
use mongofind::{Collection, Filter};

fn seeded() -> Collection {
    Collection::parse_str(r#"[{"a": 1}, {"a": 2}, {"b": 3}]"#).unwrap()
}

#[test]
fn depth_violation_is_rejected_with_parse_limit() {
    let deep = gen::hostile_deep_nesting(64);
    let Err(err) = Collection::parse_str_with_limits(&deep, ParseLimits::depth(8)) else {
        panic!("depth violation must be rejected");
    };
    match err {
        QueryError::ParseLimit(e) => assert!(matches!(e.kind, ParseErrorKind::TooDeep(8))),
        other => panic!("expected ParseLimit, got {other}"),
    }
    // The same document is fine once the cap allows it.
    assert!(Collection::parse_str_with_limits(&deep, ParseLimits::depth(64)).is_ok());
}

#[test]
fn size_violation_is_rejected_before_any_tree_is_built() {
    let big = gen::hostile_huge_keys(1 << 16, 4);
    let limits = ParseLimits {
        max_bytes: 1 << 10,
        ..ParseLimits::default()
    };
    let Err(err) = Collection::parse_str_with_limits(&big, limits) else {
        panic!("size violation must be rejected");
    };
    match err {
        QueryError::ParseLimit(e) => {
            assert!(matches!(e.kind, ParseErrorKind::TooLarge(limit) if limit == 1 << 10));
        }
        other => panic!("expected ParseLimit, got {other}"),
    }
}

#[test]
fn rejected_insert_leaves_the_collection_queryable() {
    let mut coll = seeded();
    let filter = Filter::parse_str(r#"{"a": {"$gte": 1}}"#).unwrap();
    let before = coll.find(&filter);

    let deep = gen::hostile_deep_nesting(64);
    let big = gen::hostile_huge_keys(1 << 12, 2);
    let limits = ParseLimits {
        max_depth: 8,
        max_bytes: 1 << 10,
    };
    assert!(matches!(
        coll.insert_str_with_limits(&deep, limits),
        Err(QueryError::ParseLimit(_))
    ));
    assert!(matches!(
        coll.insert_str_with_limits(&big, limits),
        Err(QueryError::ParseLimit(_))
    ));

    assert_eq!(coll.len(), 3, "rejected documents must not be inserted");
    assert_eq!(coll.find(&filter), before, "collection changed by a reject");

    // A legal document still inserts through the same guarded path.
    coll.insert_str_with_limits(r#"{"a": 9}"#, limits).unwrap();
    assert_eq!(coll.len(), 4);
    assert_eq!(coll.find(&filter).len(), before.len() + 1);
}

#[test]
fn parse_limit_error_display_names_the_ingestion_edge() {
    let Err(err) =
        Collection::parse_str_with_limits(&gen::hostile_deep_nesting(9), ParseLimits::depth(2))
    else {
        panic!("depth violation must be rejected");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("rejected at ingestion"),
        "unexpected message: {msg}"
    );
}
