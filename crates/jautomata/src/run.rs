//! The run semantics of J-automata: the appendix's "valid and accepting
//! run" labels every node with a state set consistent with the rules in
//! both directions, which pins the labelling down uniquely — so a run is
//! *computed*, bottom-up, rather than guessed.

use jsl::eval::JslContext;
use jsondata::{JsonTree, NodeId};

use crate::{AutomatonError, JAutomaton, Rule};

/// The unique run of an automaton over a tree.
pub struct Run {
    /// `labels[q][n]`: state `q` holds at node `n`.
    pub labels: Vec<Vec<bool>>,
    /// Whether some final state labels the root.
    pub accepting: bool,
}

/// Computes the run.
pub fn run(automaton: &JAutomaton, tree: &JsonTree) -> Result<Run, AutomatonError> {
    let order = automaton.validate()?;
    let n_states = automaton.rules.len();
    let n_nodes = tree.node_count();
    let mut labels: Vec<Vec<bool>> = vec![vec![false; n_nodes]; n_states];
    let mut ctx = JslContext::new(tree);

    for node in tree.bottom_up() {
        for &q in &order {
            let v = eval_rule(&automaton.rules[q], tree, node, &labels, &mut ctx);
            labels[q][node.index()] = v;
        }
    }
    let accepting = automaton
        .finals
        .iter()
        .any(|&q| labels[q][tree.root().index()]);
    Ok(Run { labels, accepting })
}

fn eval_rule(
    rule: &Rule,
    tree: &JsonTree,
    node: NodeId,
    labels: &[Vec<bool>],
    ctx: &mut JslContext<'_>,
) -> bool {
    match rule {
        Rule::True => true,
        Rule::False => false,
        Rule::And(rs) => rs.iter().all(|r| eval_rule(r, tree, node, labels, ctx)),
        Rule::Or(rs) => rs.iter().any(|r| eval_rule(r, tree, node, labels, ctx)),
        Rule::Test(t) => ctx.node_test(t, node),
        Rule::NegTest(t) => !ctx.node_test(t, node),
        Rule::State(q) => labels[*q][node.index()],
        Rule::ExistsKey(e, q) => {
            // Key matching through the shared per-regex edge matcher
            // (precomputed symbol bitset on the default tier), fetched once
            // per rule evaluation.
            let matcher = ctx.matcher_for(e);
            tree.obj_entries(node).any(|(k, c)| {
                labels[*q][c.index()] && matcher.matches_sym(k.index(), || tree.resolve(k))
            })
        }
        Rule::ForallKey(e, q) => {
            let matcher = ctx.matcher_for(e);
            tree.obj_entries(node).all(|(k, c)| {
                labels[*q][c.index()] || !matcher.matches_sym(k.index(), || tree.resolve(k))
            })
        }
        Rule::ExistsRange(i, j, q) => tree.arr_children(node).iter().enumerate().any(|(pos, c)| {
            let pos = pos as u64;
            pos >= *i && j.is_none_or(|j| pos <= j) && labels[*q][c.index()]
        }),
        Rule::ForallRange(i, j, q) => tree.arr_children(node).iter().enumerate().all(|(pos, c)| {
            let pos = pos as u64;
            !(pos >= *i && j.is_none_or(|j| pos <= j)) || labels[*q][c.index()]
        }),
    }
}
