//! String interning: stable `u32` symbols for object keys and string atoms.
//!
//! Every `O(|J|·|φ|)` bound in the paper assumes edge-label tests are
//! `O(1)`, yet a string-keyed tree pays a full comparison (and often a
//! clone) per test. Real-world JSON corpora have tiny key vocabularies
//! relative to their node counts, so a per-tree [`Interner`] turns the
//! dominant per-node string work into `u32` compares:
//!
//! * [`JsonTree::build`](crate::JsonTree::build) interns every object key
//!   and string leaf once; nodes store [`Sym`]s, never owned strings.
//! * `child_by_key` becomes an `O(1)` interner probe followed by a binary
//!   search over `Sym`s — a key absent from the interner cannot label any
//!   edge, so the miss answers `None` without touching the node.
//! * Regex edge tests throughout the logic engines run per **distinct
//!   symbol**, not per node: the default tier compiles each regex to a DFA
//!   and evaluates it over the whole table in one pass (a `SymBitset` in
//!   `relex::bitset`, one bit per `Sym`), so the inner loops do a single
//!   bit load; the lazy `(regex, Sym)` memo remains as the fallback for
//!   regexes too large to determinise.
//!
//! Symbols are **per-tree**: comparing `Sym`s from different trees is
//! meaningless (and the type offers no cross-tree guard beyond that
//! documented contract, matching `NodeId`).
//!
//! Symbols are allocated densely in interning order and never move, so a
//! consumer can snapshot the table (`len` plus [`Interner::iter`]), build a
//! dense per-symbol structure, and later catch up on symbols interned after
//! the snapshot with [`Interner::iter_from`] — the contract the bitset tier
//! relies on to stay valid while new atoms are interned.

use crate::fxhash::FxHashMap;

/// An interned string: a dense index into one [`Interner`].
///
/// `Sym`s are ordered by interning time, **not** lexicographically; they
/// support only equality/ordering as opaque ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (always `< Interner::len`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index (bench/test helper; the index
    /// must come from the same interner's [`Sym::index`]).
    pub const fn from_index(i: usize) -> Sym {
        Sym(i as u32)
    }
}

/// A string interning table: each distinct string receives one [`Sym`].
///
/// Equality compares the symbol assignment itself — two interners are equal
/// iff they map exactly the same strings to exactly the same [`Sym`]s (the
/// lookup map is derived from that sequence, so only the dense string table
/// is compared). This is the contract the parse-fusion differential tests
/// rely on: identical event streams must produce identical symbol tables.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl PartialEq for Interner {
    fn eq(&self, other: &Interner) -> bool {
        self.strings == other.strings
    }
}

impl Eq for Interner {}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its existing symbol or allocating the next one.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let owned: Box<str> = s.into();
        self.strings.push(owned.clone());
        self.map.insert(owned, sym);
        sym
    }

    /// The symbol of `s`, if it has been interned — the `O(1)` probe that
    /// fronts every key lookup.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.iter_from(0)
    }

    /// Iterates `(Sym, &str)` pairs starting at symbol index `start` — the
    /// catch-up half of the snapshot contract: a dense structure built over
    /// symbols `0..start` extends itself with exactly the strings interned
    /// since.
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .skip(start)
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        for s in ["", "k", "key", "日本語", "k"] {
            let sym = i.intern(s);
            assert_eq!(i.resolve(sym), s);
            assert_eq!(i.lookup(s), Some(sym));
        }
        assert_eq!(i.len(), 4, "duplicates collapse");
        assert_eq!(i.lookup("absent"), None);
    }

    #[test]
    fn iteration_follows_interning_order() {
        let mut i = Interner::new();
        i.intern("z");
        i.intern("a");
        let pairs: Vec<(usize, &str)> = i.iter().map(|(s, t)| (s.index(), t)).collect();
        assert_eq!(pairs, vec![(0, "z"), (1, "a")]);
    }

    #[test]
    fn iter_from_resumes_a_snapshot() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let snapshot = i.len();
        i.intern("c");
        i.intern("a"); // duplicate: no new symbol
        i.intern("d");
        let fresh: Vec<(usize, &str)> =
            i.iter_from(snapshot).map(|(s, t)| (s.index(), t)).collect();
        assert_eq!(fresh, vec![(2, "c"), (3, "d")]);
        assert!(i.iter_from(i.len()).next().is_none());
    }
}
