//! The persistent parked-helper dispatch core.
//!
//! A serving process runs many µs-scale queries per second; spawning OS
//! threads per pool call (the legacy [`crate::Dispatch::Spawn`]
//! strategy) costs more than the queries themselves. This module keeps a
//! small, process-global set of helper threads parked on a condvar and
//! lends them out to pool calls for the duration of one dispatch.
//!
//! ## Protocol
//!
//! [`dispatch`] publishes the caller's task closure on a global job
//! queue, wakes up to `helpers` parked threads, then **runs the task
//! inline on the calling thread** — progress never depends on a helper
//! being free, so a dispatch can never hang waiting for workers that are
//! busy elsewhere (including the nested case where the caller *is* a
//! helper). When the caller's inline pass returns, it revokes any
//! unclaimed invitations under the queue lock and blocks until every
//! helper that did claim the job has left the closure.
//!
//! ## Why `unsafe` lives here and nowhere else
//!
//! Helpers outlive any single dispatch, so the caller's borrowed closure
//! is smuggled to them behind a lifetime-erased raw pointer
//! ([`erased::TaskPtr`]). Soundness rests on the drain protocol above:
//! `dispatch` does not return before every participant has exited the
//! closure, so the erased borrow never outlives the stack frame it
//! points into. Participation is counted *under the queue lock at claim
//! time*, which closes the race between a helper claiming a job and the
//! caller revoking it. The crate-level lint is `deny(unsafe_code)`; this
//! module opts out for exactly the erased-pointer cell below.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on persistent helper threads. High enough that every
/// realistic `available_parallelism` fits; low enough that an absurd
/// `JPAR_THREADS` cannot exhaust the process's thread quota.
pub(crate) const MAX_HELPERS: usize = 64;

/// The dispatched closure: called with `true` on helper threads and
/// `false` on the dispatching thread's inline pass, so callers can keep
/// steal accounting exact even for nested dispatches.
type Task<'a> = &'a (dyn Fn(bool) + Sync);

#[allow(unsafe_code)]
mod erased {
    /// A lifetime-erased [`super::Task`]. `Send`/`Sync` are asserted
    /// because the pointee is `Sync` and the pointer is only dereferenced
    /// between job publication and drain (see the module docs).
    pub(super) struct TaskPtr(*const (dyn Fn(bool) + Sync));

    unsafe impl Send for TaskPtr {}
    unsafe impl Sync for TaskPtr {}

    impl TaskPtr {
        pub(super) fn new(task: super::Task<'_>) -> TaskPtr {
            let ptr: *const (dyn Fn(bool) + Sync + '_) = std::ptr::from_ref(task);
            // SAFETY: a pure lifetime erasure between identically laid-out
            // fat pointers. The erased borrow is only dereferenced while
            // `dispatch` keeps the referent alive (see the module docs).
            TaskPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(bool) + Sync + '_),
                    *const (dyn Fn(bool) + Sync + 'static),
                >(ptr)
            })
        }

        /// # Safety
        /// The referent must still be alive: callers may only invoke this
        /// on a job they claimed from the queue while registered as a
        /// participant, which [`super::dispatch`] waits for before its
        /// task borrow expires.
        pub(super) unsafe fn call(&self, on_helper: bool) {
            unsafe { (*self.0)(on_helper) }
        }
    }
}

/// One published dispatch. Lives on the queue while invitations remain
/// and in each participating helper's hand until it finishes.
struct Job {
    task: erased::TaskPtr,
    /// Helpers currently inside the closure. Incremented under the queue
    /// lock at claim time; decremented (with a notify) when the helper
    /// leaves, panic or no panic.
    participants: Mutex<usize>,
    drained: Condvar,
}

/// A queue entry: a job plus how many more helpers may still join it.
struct Entry {
    job: Arc<Job>,
    invites: usize,
}

struct Core {
    queue: Mutex<Vec<Entry>>,
    work: Condvar,
    spawned: AtomicUsize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A poisoned lock only means a helper panicked outside the
    // containment below; the protected state is still structurally sound
    // and refusing to continue would turn a contained panic into a hang.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn core() -> &'static Core {
    static CORE: OnceLock<Core> = OnceLock::new();
    CORE.get_or_init(|| Core {
        queue: Mutex::new(Vec::new()),
        work: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Spawns helpers up to `want` total (capped at [`MAX_HELPERS`]). Spawn
/// failure is tolerated: the dispatching thread always participates
/// inline, so a thread-quota error degrades throughput, not correctness.
fn ensure_helpers(want: usize) {
    let core = core();
    let want = want.min(MAX_HELPERS);
    loop {
        let cur = core.spawned.load(Ordering::Relaxed);
        if cur >= want {
            return;
        }
        if core
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let spawned = std::thread::Builder::new()
            .name(format!("jpar-helper-{cur}"))
            .spawn(helper_loop);
        if spawned.is_err() {
            core.spawned.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Decrements a job's participant count on scope exit — including panic
/// unwinds — so the dispatcher's drain wait can never be leaked.
struct Participant(Arc<Job>);

impl Drop for Participant {
    fn drop(&mut self) {
        let mut n = lock(&self.0.participants);
        *n -= 1;
        if *n == 0 {
            self.0.drained.notify_all();
        }
    }
}

/// Claims one invitation from the queue, registering the calling thread
/// as a participant *before* the queue lock is released (the ordering
/// the drain protocol relies on). Entries with no invitations left are
/// removed eagerly, so the scan is effectively front-of-queue.
fn claim(queue: &mut Vec<Entry>) -> Option<Participant> {
    let idx = queue.iter().position(|e| e.invites > 0)?;
    queue[idx].invites -= 1;
    let job = Arc::clone(&queue[idx].job);
    *lock(&job.participants) += 1;
    if queue[idx].invites == 0 {
        queue.remove(idx);
    }
    Some(Participant(job))
}

// The one call site of `TaskPtr::call` outside the erasure cell; the
// safety argument lives on the `unsafe` block below.
#[allow(unsafe_code)]
fn helper_loop() {
    let core = core();
    let mut queue = lock(&core.queue);
    loop {
        match claim(&mut queue) {
            Some(participant) => {
                drop(queue);
                // The pool's task already contains chunk panics; this
                // catch is the backstop that keeps the helper alive (and
                // the participant count exact) if the task's own
                // bookkeeping panics.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: we are a registered participant of a job we
                    // claimed from the queue; `dispatch` is still inside
                    // its drain wait, so the task borrow is alive.
                    unsafe { participant.0.task.call(true) }
                }));
                drop(participant);
                queue = lock(&core.queue);
            }
            None => {
                queue = core.work.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Runs `task` on the calling thread plus up to `helpers` parked helper
/// threads, returning only when every participant has left the closure.
///
/// `task` receives `true` when invoked on a helper and `false` on the
/// caller's inline pass. Helpers are best-effort: if none are free (or
/// none can be spawned), the call degrades to running inline.
pub(crate) fn dispatch(helpers: usize, task: Task<'_>) {
    let helpers = helpers.min(MAX_HELPERS);
    if helpers == 0 {
        task(false);
        return;
    }
    ensure_helpers(helpers);
    let core = core();
    let job = Arc::new(Job {
        task: erased::TaskPtr::new(task),
        participants: Mutex::new(0),
        drained: Condvar::new(),
    });
    lock(&core.queue).push(Entry {
        job: Arc::clone(&job),
        invites: helpers,
    });
    for _ in 0..helpers {
        core.work.notify_one();
    }

    task(false);

    // Revoke unclaimed invitations: after this, no new helper can join.
    {
        let mut queue = lock(&core.queue);
        if let Some(idx) = queue.iter().position(|e| Arc::ptr_eq(&e.job, &job)) {
            queue.remove(idx);
        }
    }
    // Drain the helpers that did join before the task borrow expires.
    let mut participants = lock(&job.participants);
    while *participants > 0 {
        participants = job
            .drained
            .wait(participants)
            .unwrap_or_else(|e| e.into_inner());
    }
}
