//! Character classes: sets of unicode scalar values kept as sorted,
//! disjoint, non-adjacent inclusive ranges.

use std::fmt;

/// Highest unicode scalar value.
pub const MAX_SCALAR: u32 = 0x10FFFF;
const SURROGATE_LO: u32 = 0xD800;
const SURROGATE_HI: u32 = 0xDFFF;

/// A set of characters as sorted disjoint inclusive ranges of scalar values.
/// Surrogate code points are never members.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CharClass {
    ranges: Vec<(u32, u32)>,
}

impl CharClass {
    /// The empty class.
    pub fn empty() -> CharClass {
        CharClass::default()
    }

    /// The class of every unicode scalar value (`.` with "dot-all").
    pub fn any() -> CharClass {
        CharClass {
            ranges: vec![(0, SURROGATE_LO - 1), (SURROGATE_HI + 1, MAX_SCALAR)],
        }
    }

    /// A singleton class.
    pub fn single(c: char) -> CharClass {
        CharClass {
            ranges: vec![(c as u32, c as u32)],
        }
    }

    /// A class from an inclusive character range.
    pub fn range(lo: char, hi: char) -> CharClass {
        let mut cc = CharClass {
            ranges: vec![(lo as u32, hi as u32)],
        };
        cc.normalize();
        cc
    }

    /// Builds from arbitrary raw ranges (normalised, surrogates removed).
    pub fn from_ranges(ranges: impl IntoIterator<Item = (u32, u32)>) -> CharClass {
        let mut cc = CharClass {
            ranges: ranges.into_iter().collect(),
        };
        cc.normalize();
        cc
    }

    fn normalize(&mut self) {
        // Drop invalid, clamp, remove surrogate band, sort, merge.
        let mut rs: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len() + 1);
        for &(lo, hi) in &self.ranges {
            if lo > hi || lo > MAX_SCALAR {
                continue;
            }
            let hi = hi.min(MAX_SCALAR);
            // Split around the surrogate band.
            if lo < SURROGATE_LO && hi > SURROGATE_HI {
                rs.push((lo, SURROGATE_LO - 1));
                rs.push((SURROGATE_HI + 1, hi));
            } else if (SURROGATE_LO..=SURROGATE_HI).contains(&lo)
                && (SURROGATE_LO..=SURROGATE_HI).contains(&hi)
            {
                continue;
            } else if (SURROGATE_LO..=SURROGATE_HI).contains(&lo) {
                rs.push((SURROGATE_HI + 1, hi));
            } else if (SURROGATE_LO..=SURROGATE_HI).contains(&hi) {
                rs.push((lo, SURROGATE_LO - 1));
            } else {
                rs.push((lo, hi));
            }
        }
        rs.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(rs.len());
        for (lo, hi) in rs {
            match merged.last_mut() {
                Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }

    /// The sorted disjoint ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Membership test (binary search).
    pub fn contains(&self, c: char) -> bool {
        let v = c as u32;
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of characters in the class.
    pub fn len(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum()
    }

    /// Union of two classes.
    pub fn union(&self, other: &CharClass) -> CharClass {
        let mut cc = CharClass {
            ranges: self
                .ranges
                .iter()
                .chain(other.ranges.iter())
                .copied()
                .collect(),
        };
        cc.normalize();
        cc
    }

    /// Intersection of two classes (linear merge).
    pub fn intersect(&self, other: &CharClass) -> CharClass {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        CharClass { ranges: out } // already sorted, disjoint, surrogate-free
    }

    /// Complement with respect to all scalar values.
    pub fn negate(&self) -> CharClass {
        let mut out = Vec::new();
        let mut next = 0u32;
        for &(lo, hi) in &self.ranges {
            if next < lo {
                out.push((next, lo - 1));
            }
            next = hi + 1;
        }
        if next <= MAX_SCALAR {
            out.push((next, MAX_SCALAR));
        }
        let mut cc = CharClass { ranges: out };
        cc.normalize(); // re-removes the surrogate band
        cc
    }

    /// Some character of the class, preferring printable ASCII so witness
    /// strings stay readable.
    pub fn example(&self) -> Option<char> {
        // First preference: a lowercase letter / digit / printable ASCII.
        for &(lo, hi) in &self.ranges {
            let pref_lo = lo.max(0x20);
            let pref_hi = hi.min(0x7E);
            if pref_lo <= pref_hi {
                // Prefer letters if the printable window includes any.
                for band in [(0x61u32, 0x7Au32), (0x30, 0x39), (pref_lo, pref_hi)] {
                    let blo = band.0.max(pref_lo);
                    let bhi = band.1.min(pref_hi);
                    if blo <= bhi {
                        return char::from_u32(blo);
                    }
                }
            }
        }
        self.ranges.first().and_then(|&(lo, _)| char::from_u32(lo))
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == CharClass::any() {
            return write!(f, ".");
        }
        write!(f, "[")?;
        for &(lo, hi) in &self.ranges {
            let show = |f: &mut fmt::Formatter<'_>, v: u32| -> fmt::Result {
                match char::from_u32(v) {
                    Some(c) if !c.is_control() && c != '[' && c != ']' && c != '\\' && c != '-' => {
                        write!(f, "{c}")
                    }
                    _ => write!(f, "\\u{{{v:04x}}}"),
                }
            };
            show(f, lo)?;
            if hi > lo {
                write!(f, "-")?;
                show(f, hi)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_range() {
        let a = CharClass::single('a');
        assert!(a.contains('a'));
        assert!(!a.contains('b'));
        let r = CharClass::range('a', 'z');
        assert!(r.contains('m'));
        assert!(!r.contains('A'));
        assert_eq!(r.len(), 26);
    }

    #[test]
    fn normalization_merges_adjacent() {
        let c = CharClass::from_ranges([(10, 20), (21, 30), (5, 8)]);
        assert_eq!(c.ranges(), &[(5, 8), (10, 30)]);
    }

    #[test]
    fn surrogates_excluded() {
        let c = CharClass::from_ranges([(0xD000, 0xE000)]);
        assert!(c.contains('\u{D000}'));
        assert!(c.contains('\u{E000}'));
        assert_eq!(c.ranges(), &[(0xD000, 0xD7FF), (0xE000, 0xE000)]);
        assert!(CharClass::any().negate().is_empty());
    }

    #[test]
    fn union_intersect_negate() {
        let az = CharClass::range('a', 'z');
        let mz = CharClass::range('m', 'z');
        let digits = CharClass::range('0', '9');
        assert_eq!(az.intersect(&mz), mz);
        assert!(az.intersect(&digits).is_empty());
        let u = az.union(&digits);
        assert!(u.contains('5') && u.contains('q'));
        let neg = az.negate();
        assert!(!neg.contains('q'));
        assert!(neg.contains('A'));
        assert_eq!(neg.negate(), az);
    }

    #[test]
    fn example_prefers_readable() {
        assert_eq!(CharClass::range('a', 'z').example(), Some('a'));
        assert_eq!(CharClass::any().example(), Some('a'));
        assert_eq!(CharClass::range('0', '9').example(), Some('0'));
        assert_eq!(CharClass::single('\u{0}').example(), Some('\u{0}'));
        assert_eq!(CharClass::empty().example(), None);
    }

    #[test]
    fn len_counts_scalar_values() {
        assert_eq!(CharClass::any().len(), (MAX_SCALAR as u64 + 1) - 2048);
    }
}
