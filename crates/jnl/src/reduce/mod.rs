//! The paper's hardness reductions, implemented as executable artifacts.
//!
//! * [`threesat`] — 3SAT → deterministic JNL satisfiability (the
//!   Proposition 2 lower bound). Used by experiment E2 both to validate the
//!   solver (SAT/UNSAT answers must match a brute-force CNF check) and to
//!   generate hard benchmark instances.
//! * [`minsky`] — two-counter (Minsky) machine → recursive non-deterministic
//!   JNL (the Proposition 4 undecidability proof). Undecidability cannot be
//!   "run", but the reduction can: for halting machines we build the
//!   witness document from the run and check the formula accepts it.

pub mod minsky;
pub mod threesat;
