//! Index-vs-scan differential suite.
//!
//! The scan path (`Collection::find_refs`) is the oracle; the index path
//! (`Collection::find_refs_indexed`) must be **byte-identical** to it for
//! every filter — probed or fallen back — across every segment layout the
//! tree column can be in ({one big parse, 1k single-doc inserts,
//! post-compact, empty}) and every thread count ({1, 2, 8}; the probe
//! itself is sequential, but the fallback scans and the materialisation
//! passes ride the pool). Incremental maintenance (inserts after the
//! index is built) and unicode keys/values get dedicated sweeps.

use jpar::Pool;
use jsondata::{gen, serialize::to_string, Json};
use mongofind::{Collection, Filter};

/// Filters crossing the probe planner's whole surface: indexed `$eq`,
/// ranges, `$in`, compound probe+residual, unindexed paths (scan
/// fallback), `$or`/`$ne`/`$exists` (unanswerable), and missing paths.
fn filter_corpus() -> Vec<Filter> {
    [
        // fully index-answerable
        r#"{"name.first": "Sue"}"#,
        r#"{"age": {"$eq": 44}}"#,
        r#"{"age": {"$gt": 60}}"#,
        r#"{"age": {"$gte": 18, "$lt": 30}}"#,
        r#"{"age": {"$lte": 25}}"#,
        r#"{"name.first": {"$in": ["Sue", "Ivy", "Nobody"]}}"#,
        r#"{"name.first": "Wei", "age": {"$gte": 40}}"#,
        // probe + residual (name.last / hobbies are never indexed)
        r#"{"age": {"$gt": 30}, "name.last": "Kim"}"#,
        r#"{"name.first": "Ana", "hobbies": {"$size": 2}}"#,
        // nothing answerable: scan fallback must engage
        r#"{"age": {"$ne": 44}}"#,
        r#"{"name.last": {"$nin": ["Doe"]}}"#,
        r#"{"$or": [{"age": 18}, {"name.first": "Ivy"}]}"#,
        r#"{"name.last": {"$exists": "false"}}"#,
        r#"{"$not": {"age": {"$lt": 70}}}"#,
        // probes that can never match
        r#"{"name.first": "NoSuchName"}"#,
        r#"{"age": {"$gt": 10000}}"#,
        r#"{"nope.deep": 1}"#,
    ]
    .iter()
    .map(|src| Filter::parse_str(src).expect("corpus filter parses"))
    .collect()
}

/// Declares the suite's two standing indexes.
fn with_indexes(mut coll: Collection) -> Collection {
    assert!(coll.create_index("name.first"));
    assert!(coll.create_index("age"));
    coll
}

fn big_parse(n: usize) -> Collection {
    Collection::parse_str(&to_string(&gen::person_records(n, 42))).unwrap()
}

fn fragmented(n: usize) -> Collection {
    let Json::Array(docs) = gen::person_records(n, 42) else {
        panic!("person_records returns an array");
    };
    let mut coll = Collection::parse_str("[]").unwrap();
    for d in &docs {
        coll.insert_str(&to_string(d)).unwrap();
    }
    coll
}

/// The layout sweep: every shape carries the same two indexes.
fn shapes(n: usize) -> Vec<(&'static str, Collection)> {
    // Indexes created *before* compaction: the rebuild path is exercised.
    let mut compacted = with_indexes(fragmented(n));
    compacted.compact();
    vec![
        ("one_big_parse", with_indexes(big_parse(n))),
        ("fragmented_inserts", with_indexes(fragmented(n))),
        ("post_compact", compacted),
        ("empty", with_indexes(Collection::parse_str("[]").unwrap())),
    ]
}

#[test]
fn indexed_find_agrees_with_scan_across_layouts_and_threads() {
    for (label, mut coll) in shapes(1000) {
        for f in filter_corpus() {
            coll.set_pool(Pool::serial());
            let oracle_refs = coll.find_refs(&f);
            let oracle_docs = coll.find(&f);
            for threads in [1, 2, 8] {
                coll.set_pool(Pool::with_threads(threads));
                assert_eq!(
                    coll.find_refs_indexed(&f),
                    oracle_refs,
                    "{label} x{threads} {f:?}"
                );
                assert_eq!(
                    coll.find_indexed(&f),
                    oracle_docs,
                    "{label} x{threads} {f:?}"
                );
            }
        }
    }
}

#[test]
fn incremental_maintenance_keeps_probes_exact() {
    // Index first, insert afterwards: every insert appends a single-doc
    // segment whose postings are built incrementally; probes must see the
    // new documents immediately and exactly.
    let mut coll = with_indexes(big_parse(300));
    let Json::Array(extra) = gen::person_records(200, 7) else {
        panic!("array");
    };
    for (i, d) in extra.iter().enumerate() {
        coll.insert(d);
        if i % 50 == 0 {
            for f in filter_corpus() {
                assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f), "{f:?}");
            }
        }
    }
    for f in filter_corpus() {
        assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f), "{f:?}");
    }
    // Compact the mixed column and sweep once more (full rebuild).
    coll.compact();
    for f in filter_corpus() {
        assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f), "{f:?}");
    }
}

#[test]
fn unicode_keys_and_values_probe_exactly() {
    let mut coll = Collection::parse_str(
        r#"[
            {"città": "Zürich", "n": 1},
            {"città": "São Paulo", "n": 2},
            {"città": "Zürich", "n": 3},
            {"città": "北京", "n": 4},
            {"città": "ZÜRICH", "n": 5},
            {"n": 6}
        ]"#,
    )
    .unwrap();
    assert!(coll.create_index("città"));
    for src in [
        r#"{"città": "Zürich"}"#,
        r#"{"città": "北京"}"#,
        r#"{"città": {"$in": ["São Paulo", "ZÜRICH"]}}"#,
        r#"{"città": {"$gt": "Z"}}"#,
        r#"{"città": {"$lte": "Zürich"}}"#,
        r#"{"città": "zürich"}"#,
    ] {
        let f = Filter::parse_str(src).unwrap();
        assert!(coll.index_answerable(&f), "{src}");
        assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f), "{src}");
    }
    // Insert more unicode after the build, then compact: maintenance and
    // rebuild must both keep byte-exact agreement.
    coll.insert(&jsondata::parse(r#"{"città": "Zürich", "n": 7}"#).unwrap());
    coll.insert(&jsondata::parse(r#"{"città": "øster", "n": 8}"#).unwrap());
    let f = Filter::parse_str(r#"{"città": "Zürich"}"#).unwrap();
    assert_eq!(coll.find_refs_indexed(&f).len(), 3);
    assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f));
    coll.compact();
    assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f));
}

#[test]
fn structured_value_probes_agree() {
    // Indexed values need not be scalars: equality probes on objects and
    // arrays go through the same canon classes, ranges through the same
    // total order.
    let mut coll = Collection::parse_str(
        r#"[
            {"v": {"a": 1, "b": 2}},
            {"v": {"b": 2, "a": 1}},
            {"v": [1, 2]},
            {"v": [1, 2, 3]},
            {"v": 5},
            {"v": "5"},
            {"other": 1}
        ]"#,
    )
    .unwrap();
    assert!(coll.create_index("v"));
    for src in [
        r#"{"v": {"a": 1, "b": 2}}"#,
        r#"{"v": [1, 2]}"#,
        r#"{"v": {"$gte": [1, 2]}}"#,
        r#"{"v": {"$lt": "5"}}"#,
        r#"{"v": {"$gt": 4}}"#,
        r#"{"v": {"$in": [[1, 2, 3], 5]}}"#,
    ] {
        let f = Filter::parse_str(src).unwrap();
        assert!(coll.index_answerable(&f), "{src}");
        assert_eq!(coll.find_refs_indexed(&f), coll.find_refs(&f), "{src}");
    }
}
