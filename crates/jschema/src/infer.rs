//! Schema inference from example documents — the extension the paper calls
//! for in §5.2 ("the community has repeatedly stated the need for
//! algorithms that can learn JSON Schemas from examples").
//!
//! The inference is deliberately simple and sound: the produced schema
//! validates every example. Objects contribute `properties` (with `required`
//! for keys present in *all* examples), arrays contribute a merged
//! `additionalItems` element schema, numbers contribute `minimum`/`maximum`
//! envelopes, and mixed-kind example sets fall back to `anyOf` per kind.

use jsondata::Json;

use crate::ir::{Schema, SchemaType};

/// Infers a schema that accepts every example (and structurally similar
/// documents).
pub fn infer(examples: &[Json]) -> Schema {
    let mut strings = Vec::new();
    let mut numbers = Vec::new();
    let mut objects = Vec::new();
    let mut arrays = Vec::new();
    for e in examples {
        match e {
            Json::Str(_) => strings.push(e),
            Json::Num(n) => numbers.push(*n),
            Json::Object(_) => objects.push(e),
            Json::Array(items) => arrays.push(items),
        }
    }
    let mut branches: Vec<Schema> = Vec::new();
    if !strings.is_empty() {
        branches.push(Schema {
            ty: Some(SchemaType::String),
            ..Schema::default()
        });
    }
    if !numbers.is_empty() {
        branches.push(Schema {
            ty: Some(SchemaType::Number),
            minimum: numbers.iter().min().copied(),
            maximum: numbers.iter().max().copied(),
            ..Schema::default()
        });
    }
    if !objects.is_empty() {
        branches.push(infer_objects(&objects));
    }
    if !arrays.is_empty() {
        let all_items: Vec<Json> = arrays.iter().flat_map(|a| a.iter().cloned()).collect();
        let element = if all_items.is_empty() {
            Schema::default()
        } else {
            infer(&all_items)
        };
        branches.push(Schema {
            ty: Some(SchemaType::Array),
            additional_items: Some(Box::new(element)),
            ..Schema::default()
        });
    }
    match branches.len() {
        0 => Schema::default(),
        1 => branches.into_iter().next().expect("one branch"),
        _ => Schema {
            any_of: branches,
            ..Schema::default()
        },
    }
}

fn infer_objects(objects: &[&Json]) -> Schema {
    // Union of keys; required = intersection.
    let mut keys: Vec<String> = Vec::new();
    for o in objects {
        for (k, _) in o.as_object().expect("filtered").iter() {
            if !keys.iter().any(|e| e == k) {
                keys.push(k.to_owned());
            }
        }
    }
    let mut properties = Vec::new();
    let mut required = Vec::new();
    for k in keys {
        let values: Vec<Json> = objects.iter().filter_map(|o| o.get(&k).cloned()).collect();
        if values.len() == objects.len() {
            required.push(k.clone());
        }
        properties.push((k, infer(&values)));
    }
    Schema {
        ty: Some(SchemaType::Object),
        properties,
        required,
        ..Schema::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_valid;
    use jsondata::parse;

    #[test]
    fn inferred_schema_accepts_all_examples() {
        let examples: Vec<Json> = [
            r#"{"name": {"first": "John", "last": "Doe"}, "age": 32, "hobbies": ["fishing"]}"#,
            r#"{"name": {"first": "Sue"}, "age": 28, "hobbies": []}"#,
            r#"{"name": {"first": "Ana", "last": "Lopez"}, "age": 41, "hobbies": ["chess", "yoga"], "id": 7}"#,
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let schema = infer(&examples);
        for e in &examples {
            assert!(is_valid(&schema, e).unwrap(), "must accept {e}");
        }
        // Structure is captured: name/age/hobbies are required, id is not.
        assert!(schema.required.contains(&"name".to_owned()));
        assert!(schema.required.contains(&"age".to_owned()));
        assert!(!schema.required.contains(&"id".to_owned()));
        // And kind violations are rejected.
        assert!(!is_valid(
            &schema,
            &parse(r#"{"name": 3, "age": 1, "hobbies": []}"#).unwrap()
        )
        .unwrap());
        assert!(!is_valid(&schema, &parse(r#"{"age": 1, "hobbies": []}"#).unwrap()).unwrap());
    }

    #[test]
    fn mixed_kinds_fall_back_to_anyof() {
        let examples = vec![parse("1").unwrap(), parse(r#""s""#).unwrap()];
        let schema = infer(&examples);
        assert_eq!(schema.any_of.len(), 2);
        for e in &examples {
            assert!(is_valid(&schema, e).unwrap());
        }
        assert!(is_valid(&schema, &parse("5").unwrap()).is_ok());
    }

    #[test]
    fn numeric_envelopes() {
        let examples: Vec<Json> = ["3", "10", "6"].iter().map(|s| parse(s).unwrap()).collect();
        let schema = infer(&examples);
        assert_eq!(schema.minimum, Some(3));
        assert_eq!(schema.maximum, Some(10));
        assert!(is_valid(&schema, &parse("7").unwrap()).unwrap());
        assert!(!is_valid(&schema, &parse("11").unwrap()).unwrap());
    }

    #[test]
    fn array_elements_merge() {
        let examples = vec![parse(r#"[1, 2]"#).unwrap(), parse(r#"[9]"#).unwrap()];
        let schema = infer(&examples);
        assert!(is_valid(&schema, &parse("[5, 5, 5]").unwrap()).unwrap());
        assert!(!is_valid(&schema, &parse(r#"["x"]"#).unwrap()).unwrap());
    }

    #[test]
    fn no_examples_yields_permissive_schema() {
        let schema = infer(&[]);
        assert!(is_valid(&schema, &parse("{}").unwrap()).unwrap());
        assert!(is_valid(&schema, &parse("1").unwrap()).unwrap());
    }

    #[test]
    fn inferred_schema_translates_to_jsl() {
        // The inference output stays inside the Table 1 fragment, so the
        // Theorem 1 translation applies to it.
        let examples = vec![
            parse(r#"{"a": 1}"#).unwrap(),
            parse(r#"{"a": 2, "b": "x"}"#).unwrap(),
        ];
        let schema = infer(&examples);
        let delta = crate::jsl_bridge::schema_to_jsl(&schema).unwrap();
        for e in &examples {
            let tree = jsondata::JsonTree::build(e);
            assert!(delta.check_root(&tree));
        }
    }
}
