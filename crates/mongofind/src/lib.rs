//! # mongofind — a MongoDB-style `find` dialect over JNL
//!
//! §4.1 of the paper isolates MongoDB's `find(filter, projection)` as the
//! archetype of deterministic JSON querying and shows the filter language is
//! captured by JNL navigation conditions `P ~ J`. This crate implements
//! that dialect end-to-end:
//!
//! * [`Filter`] — parsed filter documents: implicit equality
//!   (`{name: {first: "Sue"}}`), comparison operators (`$eq`, `$ne`, `$gt`,
//!   `$gte`, `$lt`, `$lte`), membership (`$in`, `$nin`), `$exists`,
//!   `$size`, `$type`, and the boolean forms `$and`, `$or`, `$not`, with
//!   dotted paths (`"name.first"`, `"hobbies.0"`).
//! * [`Filter::to_jnl`] — the compilation into a deterministic JNL unary
//!   formula (the paper's Example 1 becomes
//!   `eqdoc(@"name", "Sue")`-style conditions).
//! * [`Collection::find`] — evaluation over a collection, implemented *by*
//!   the JNL engine, plus [`Projection`] (the §6 future-work feature) as a
//!   basic include/exclude JSON→JSON transformation.
//!
//! ```
//! use jsondata::parse;
//! use mongofind::{Collection, Filter};
//!
//! let people = parse(r#"[
//!     {"name": {"first": "Sue"}, "age": 28},
//!     {"name": {"first": "John"}, "age": 32}
//! ]"#).unwrap();
//! let coll = Collection::from_array(&people).unwrap();
//!
//! // db.collection.find({"name.first": {"$eq": "Sue"}})
//! let filter = Filter::parse_str(r#"{"name.first": {"$eq": "Sue"}}"#).unwrap();
//! let hits = coll.find(&filter);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].get("age"), Some(&jsondata::Json::Num(28)));
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, OnceLock};

use jguard::{QueryCtx, QueryError};
use jnl::ast::{Binary, Unary};
use jpar::Pool;
use jsondata::{Interner, Json, JsonTree, NodeId, NodeKind, ParseLimits};
use jtrace::Counter;

mod explain;
mod index;

pub use explain::{FindAnalyze, FindExplain, ProbeDesc, Route, ANALYZE_SPAN_CAPACITY};
pub use index::IndexSet;

/// Unwraps a governed result obtained under [`QueryCtx::unlimited`] —
/// the delegation path of the legacy (ctx-free) APIs. An unlimited
/// context never raises deadline/budget/cancel errors, so the only
/// reachable failure is a contained worker panic, which is re-raised
/// here to preserve the legacy APIs' panic semantics.
fn expect_ungoverned<T>(r: Result<T, QueryError>) -> T {
    match r {
        Ok(v) => v,
        Err(QueryError::WorkerPanicked { chunk, payload }) => {
            panic!(
                "worker panicked on chunk {}..{}: {payload}",
                chunk.start, chunk.end
            )
        }
        Err(e) => unreachable!("unlimited ctx cannot fail: {e}"),
    }
}

/// Minimum per-chunk document count for the parallel scan paths: ranges
/// below this collapse into one chunk and run inline on the calling
/// thread (see [`Pool::chunk_for`]), so small collections never pay a
/// thread spawn.
const DOC_CHUNK_MIN: usize = 256;

/// A comparison operator of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `$eq`
    Eq,
    /// `$ne`
    Ne,
    /// `$gt`
    Gt,
    /// `$gte`
    Gte,
    /// `$lt`
    Lt,
    /// `$lte`
    Lte,
}

/// A parsed filter (the first argument of `find`).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// All conditions hold (the top-level document form).
    And(Vec<Filter>),
    /// `$or`.
    Or(Vec<Filter>),
    /// `$not` applied to a path condition set.
    Not(Box<Filter>),
    /// `path op value`.
    Compare(Path, Cmp, Json),
    /// `path $in [v…]` / `$nin`.
    In(Path, Vec<Json>, bool),
    /// `path $exists true/false`.
    Exists(Path, bool),
    /// `path $size n`.
    Size(Path, u64),
    /// `path $type "string"|"number"|"object"|"array"`.
    Type(Path, &'static str),
}

/// A dotted path: `"name.first"` → `["name", "first"]`; numeric segments
/// address array positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path(pub Vec<String>);

impl Path {
    /// Parses a dotted path (`"name.first"`, `"hobbies.0"`).
    pub fn parse(s: &str) -> Path {
        Path(s.split('.').map(str::to_owned).collect())
    }

    /// Resolves this path against a [`Json`] value: numeric segments index
    /// arrays, every segment is a key lookup on objects.
    pub fn resolve<'a>(&self, doc: &'a Json) -> Option<&'a Json> {
        resolve(doc, self)
    }

    /// [`Path::resolve`] on a [`JsonTree`], anchored at `at` — no string is
    /// ever cloned (an `O(1)` interner probe + `u32` binary search per
    /// segment).
    pub fn resolve_node(&self, tree: &JsonTree, at: NodeId) -> Option<NodeId> {
        resolve_node(tree, at, self)
    }

    /// Compiles the path to its JNL navigation axis: numeric segments
    /// become array-position steps, everything else a key step. Public for
    /// the static analyzer (`jstat`), which builds path-existence probes
    /// (`[α]`) against declared schemas from the same compilation the
    /// filter fast path uses.
    pub fn to_binary(&self) -> Binary {
        Binary::compose(
            self.0
                .iter()
                .map(|seg| match seg.parse::<u64>() {
                    Ok(i) => Binary::Index(i as i64),
                    Err(_) => Binary::Key(seg.clone()),
                })
                .collect(),
        )
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Gt => ">",
            Cmp::Gte => ">=",
            Cmp::Lt => "<",
            Cmp::Lte => "<=",
        })
    }
}

/// Compact single-line rendering used by `EXPLAIN` plans: `path op value`
/// conditions joined with `&&`/`||`, values in JSON text. The rendering is
/// deterministic (it follows the parsed structure) and is pinned by the
/// explain snapshot tests.
impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, fs: &[Filter], sep: &str) -> fmt::Result {
            f.write_str("(")?;
            for (i, sub) in fs.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                write!(f, "{sub}")?;
            }
            f.write_str(")")
        }
        match self {
            Filter::And(fs) if fs.is_empty() => f.write_str("true"),
            Filter::And(fs) if fs.len() == 1 => write!(f, "{}", fs[0]),
            Filter::And(fs) => join(f, fs, " && "),
            Filter::Or(fs) if fs.is_empty() => f.write_str("false"),
            Filter::Or(fs) => join(f, fs, " || "),
            Filter::Not(sub) => write!(f, "!({sub})"),
            Filter::Compare(p, cmp, v) => write!(f, "{p} {cmp} {v}"),
            Filter::In(p, items, positive) => {
                write!(f, "{p} {} [", if *positive { "in" } else { "nin" })?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Filter::Exists(p, flag) => {
                write!(f, "{}exists({p})", if *flag { "" } else { "!" })
            }
            Filter::Size(p, n) => write!(f, "size({p}) = {n}"),
            Filter::Type(p, ty) => write!(f, "type({p}) = \"{ty}\""),
        }
    }
}

/// Filter-parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

impl Filter {
    /// Parses a filter document.
    pub fn parse(doc: &Json) -> Result<Filter, FilterError> {
        let Some(obj) = doc.as_object() else {
            return Err(FilterError("filter must be an object".into()));
        };
        let mut parts = Vec::new();
        for (k, v) in obj.iter() {
            match k {
                "$and" | "$or" => {
                    let Some(items) = v.as_array() else {
                        return Err(FilterError(format!("{k} expects an array")));
                    };
                    let subs: Vec<Filter> =
                        items.iter().map(Filter::parse).collect::<Result<_, _>>()?;
                    parts.push(if k == "$and" {
                        Filter::And(subs)
                    } else {
                        Filter::Or(subs)
                    });
                }
                "$not" => parts.push(Filter::Not(Box::new(Filter::parse(v)?))),
                _ if k.starts_with('$') => {
                    return Err(FilterError(format!("unknown top-level operator {k}")))
                }
                path => parts.extend(Self::parse_condition(Path::parse(path), v)?),
            }
        }
        Ok(Filter::And(parts))
    }

    /// Parses from filter text.
    pub fn parse_str(src: &str) -> Result<Filter, FilterError> {
        let doc = jsondata::parse(src).map_err(|e| FilterError(e.to_string()))?;
        Filter::parse(&doc)
    }

    fn parse_condition(path: Path, v: &Json) -> Result<Vec<Filter>, FilterError> {
        // An object whose keys are all operators is a condition set;
        // anything else is implicit equality.
        let is_ops = v
            .as_object()
            .is_some_and(|o| !o.is_empty() && o.iter().all(|(k, _)| k.starts_with('$')));
        if !is_ops {
            return Ok(vec![Filter::Compare(path, Cmp::Eq, v.clone())]);
        }
        let obj = v.as_object().expect("checked");
        let mut out = Vec::new();
        for (op, operand) in obj.iter() {
            out.push(match op {
                "$eq" => Filter::Compare(path.clone(), Cmp::Eq, operand.clone()),
                "$ne" => Filter::Compare(path.clone(), Cmp::Ne, operand.clone()),
                "$gt" => Filter::Compare(path.clone(), Cmp::Gt, operand.clone()),
                "$gte" => Filter::Compare(path.clone(), Cmp::Gte, operand.clone()),
                "$lt" => Filter::Compare(path.clone(), Cmp::Lt, operand.clone()),
                "$lte" => Filter::Compare(path.clone(), Cmp::Lte, operand.clone()),
                "$in" | "$nin" => {
                    let Some(items) = operand.as_array() else {
                        return Err(FilterError(format!("{op} expects an array")));
                    };
                    Filter::In(path.clone(), items.to_vec(), op == "$in")
                }
                "$exists" => {
                    let flag = match operand {
                        Json::Num(1) | Json::Str(_) if operand.as_str() == Some("true") => true,
                        Json::Num(1) => true,
                        Json::Num(0) => false,
                        Json::Str(s) if s == "true" => true,
                        Json::Str(s) if s == "false" => false,
                        _ => return Err(FilterError("$exists expects \"true\"/\"false\"".into())),
                    };
                    Filter::Exists(path.clone(), flag)
                }
                "$size" => {
                    let Some(n) = operand.as_num() else {
                        return Err(FilterError("$size expects a number".into()));
                    };
                    Filter::Size(path.clone(), n)
                }
                "$type" => {
                    let ty = match operand.as_str() {
                        Some("string") => "string",
                        Some("number") => "number",
                        Some("object") => "object",
                        Some("array") => "array",
                        _ => return Err(FilterError("$type expects a type name".into())),
                    };
                    Filter::Type(path.clone(), ty)
                }
                "$not" => Filter::Not(Box::new(Filter::And(Self::parse_condition(
                    path.clone(),
                    operand,
                )?))),
                other => return Err(FilterError(format!("unknown operator {other}"))),
            });
        }
        Ok(out)
    }

    /// Compiles to a deterministic JNL unary formula — the paper's claim
    /// that `find` filters are navigation conditions.
    ///
    /// Order comparisons expand to a JNL-expressible form only for number
    /// operands (the dialect's common case); for those the formula uses an
    /// `EQ`-free encoding through value enumeration-free tests: we keep the
    /// comparison as a direct evaluation below but still express
    /// equality/containment/existence structurally in JNL.
    pub fn to_jnl(&self) -> Unary {
        match self {
            Filter::And(fs) => Unary::and(fs.iter().map(Filter::to_jnl).collect()),
            Filter::Or(fs) => Unary::or(fs.iter().map(Filter::to_jnl).collect()),
            Filter::Not(f) => Unary::not(f.to_jnl()),
            Filter::Compare(p, Cmp::Eq, v) => Unary::eq_doc(p.to_binary(), v.clone()),
            Filter::Compare(p, Cmp::Ne, v) => Unary::and(vec![
                Unary::exists(p.to_binary()),
                Unary::not(Unary::eq_doc(p.to_binary(), v.clone())),
            ]),
            Filter::Compare(p, cmp, v) => {
                // Order comparisons have no JNL counterpart (JNL equality is
                // structural); the compilation over-approximates them with
                // path existence, and `matches` decides the order directly.
                // The equality fragment (everything the paper's navigation
                // conditions cover) compiles exactly — see the differential
                // test `jnl_compilation_agrees_on_equality_fragment`.
                let _ = (cmp, v);
                Unary::exists(p.to_binary())
            }
            Filter::In(p, items, pos) => {
                let any = Unary::or(
                    items
                        .iter()
                        .map(|v| Unary::eq_doc(p.to_binary(), v.clone()))
                        .collect(),
                );
                if *pos {
                    any
                } else {
                    Unary::and(vec![Unary::exists(p.to_binary()), Unary::not(any)])
                }
            }
            Filter::Exists(p, true) => Unary::exists(p.to_binary()),
            Filter::Exists(p, false) => Unary::not(Unary::exists(p.to_binary())),
            Filter::Size(p, n) => {
                // [path ∘ X_{n-1}] ∧ ¬[path ∘ X_n]: exactly n elements.
                let mut parts = Vec::new();
                if *n > 0 {
                    parts.push(Unary::exists(Binary::compose(vec![
                        p.to_binary(),
                        Binary::Index(*n as i64 - 1),
                    ])));
                } else {
                    parts.push(Unary::exists(p.to_binary()));
                }
                parts.push(Unary::not(Unary::exists(Binary::compose(vec![
                    p.to_binary(),
                    Binary::Index(*n as i64),
                ]))));
                Unary::and(parts)
            }
            Filter::Type(p, ty) => {
                // Type observations through structure: arrays have an index
                // child or are empty — not structurally observable in pure
                // JNL for empty containers, so `matches` refines this.
                let _ = ty;
                Unary::exists(p.to_binary())
            }
        }
    }

    /// Whether [`Filter::to_jnl`] compiles this filter **exactly**, i.e.
    /// evaluating the compiled formula agrees with [`Filter::matches`] on
    /// *every* document. The compilation over-approximates order
    /// comparisons and `$type` (both fall back to path existence), `$size`
    /// observes array length through index existence (an object with the
    /// right numeric keys would satisfy it), and numeric path segments
    /// compile to array positions while [`Filter::matches`] also accepts
    /// them as object keys — so all four are excluded from the exact
    /// fragment. Callers (e.g. the `jagg` `$match` fast path) use this to
    /// decide when one whole-collection JNL evaluation may answer the
    /// filter for every document at once.
    pub fn jnl_exact(&self) -> bool {
        fn path_exact(p: &Path) -> bool {
            // A numeric segment is Binary::Index in JNL (arrays only) but a
            // key lookup on objects in `matches` — conservatively inexact.
            p.0.iter().all(|seg| seg.parse::<u64>().is_err())
        }
        match self {
            Filter::And(fs) | Filter::Or(fs) => fs.iter().all(Filter::jnl_exact),
            Filter::Not(f) => f.jnl_exact(),
            Filter::Compare(p, Cmp::Eq | Cmp::Ne, _) => path_exact(p),
            Filter::Compare(..) => false,
            Filter::In(p, _, _) | Filter::Exists(p, _) => path_exact(p),
            Filter::Size(..) | Filter::Type(..) => false,
        }
    }

    /// Exact filter semantics on one document (order comparisons and
    /// `$type` decided directly; everything else agrees with
    /// [`Filter::to_jnl`] evaluated by the JNL engine — differentially
    /// tested).
    pub fn matches(&self, doc: &Json) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
            Filter::Compare(p, cmp, v) => match resolve(doc, p) {
                Some(x) => {
                    let ord = x.total_cmp(v);
                    match cmp {
                        Cmp::Eq => ord.is_eq(),
                        Cmp::Ne => !ord.is_eq(),
                        Cmp::Gt => ord.is_gt(),
                        Cmp::Gte => ord.is_ge(),
                        Cmp::Lt => ord.is_lt(),
                        Cmp::Lte => ord.is_le(),
                    }
                }
                None => false,
            },
            Filter::In(p, items, pos) => match resolve(doc, p) {
                Some(x) => items.contains(x) == *pos,
                None => false,
            },
            Filter::Exists(p, flag) => resolve(doc, p).is_some() == *flag,
            Filter::Size(p, n) => resolve(doc, p)
                .and_then(Json::as_array)
                .is_some_and(|a| a.len() as u64 == *n),
            Filter::Type(p, ty) => {
                resolve(doc, p).is_some_and(|x| type_matches_kind(ty, json_kind(x)))
            }
        }
    }

    /// [`Filter::matches`] evaluated directly on a [`JsonTree`] — the
    /// tree-backed twin used by [`Collection`], so documents loaded through
    /// the fused parser (`jsondata::parse_to_tree`) are queried without ever
    /// re-materialising a [`Json`]. Semantics agree with `matches` on
    /// `tree.to_json()` exactly (differentially tested).
    pub fn matches_tree(&self, tree: &JsonTree) -> bool {
        self.matches_at(tree, tree.root())
    }

    /// [`Filter::matches_tree`] anchored at an arbitrary node — `doc` plays
    /// the document root, which is how [`Collection`] evaluates one filter
    /// over every element of a single whole-collection tree.
    pub fn matches_at(&self, tree: &JsonTree, doc: NodeId) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches_at(tree, doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches_at(tree, doc)),
            Filter::Not(f) => !f.matches_at(tree, doc),
            Filter::Compare(p, cmp, v) => match resolve_node(tree, doc, p) {
                Some(n) => {
                    let ord = cmp_node_json(tree, n, v);
                    match cmp {
                        Cmp::Eq => ord.is_eq(),
                        Cmp::Ne => !ord.is_eq(),
                        Cmp::Gt => ord.is_gt(),
                        Cmp::Gte => ord.is_ge(),
                        Cmp::Lt => ord.is_lt(),
                        Cmp::Lte => ord.is_le(),
                    }
                }
                None => false,
            },
            Filter::In(p, items, pos) => match resolve_node(tree, doc, p) {
                Some(n) => items.iter().any(|v| cmp_node_json(tree, n, v).is_eq()) == *pos,
                None => false,
            },
            Filter::Exists(p, flag) => resolve_node(tree, doc, p).is_some() == *flag,
            Filter::Size(p, n) => resolve_node(tree, doc, p)
                .is_some_and(|m| tree.kind(m) == NodeKind::Arr && tree.child_count(m) as u64 == *n),
            Filter::Type(p, ty) => {
                resolve_node(tree, doc, p).is_some_and(|m| type_matches_kind(ty, tree.kind(m)))
            }
        }
    }
}

fn resolve<'a>(doc: &'a Json, path: &Path) -> Option<&'a Json> {
    let mut cur = doc;
    for seg in &path.0 {
        cur = match (cur, seg.parse::<usize>()) {
            (Json::Array(items), Ok(i)) => items.get(i)?,
            (Json::Object(_), _) => cur.get(seg)?,
            _ => return None,
        };
    }
    Some(cur)
}

/// One segment of [`Path::resolve_node`]: a numeric segment indexes an
/// array node, every segment is a key lookup on an object node (an `O(1)`
/// interner probe + `u32` binary search — no string is ever cloned). This
/// is THE single-step rule of the dialect's dotted paths; binding-aware
/// resolvers (the `jagg` overlay rows) step through it so their path
/// semantics cannot drift from the plain tree walk.
pub fn resolve_node_step(tree: &JsonTree, at: NodeId, seg: &str) -> Option<NodeId> {
    match (tree.kind(at), seg.parse::<usize>()) {
        (NodeKind::Arr, Ok(i)) => tree.child_by_index(at, i),
        (NodeKind::Obj, _) => tree.child_by_key(at, seg),
        _ => None,
    }
}

/// [`resolve`] on a tree: [`resolve_node_step`] per segment.
fn resolve_node(tree: &JsonTree, doc: NodeId, path: &Path) -> Option<NodeId> {
    let mut cur = doc;
    for seg in &path.0 {
        cur = resolve_node_step(tree, cur, seg)?;
    }
    Some(cur)
}

/// The kind partition a JSON value belongs to (the value-side counterpart
/// of [`JsonTree::kind`]).
pub fn json_kind(v: &Json) -> NodeKind {
    match v {
        Json::Num(_) => NodeKind::Int,
        Json::Str(_) => NodeKind::Str,
        Json::Array(_) => NodeKind::Arr,
        Json::Object(_) => NodeKind::Obj,
    }
}

/// The `$type` vocabulary: whether a node kind satisfies a type name. The
/// single source of truth for every `$type` test — [`Filter::matches`],
/// [`Filter::matches_at`] and the `jagg` overlay matcher all consult it.
pub fn type_matches_kind(ty: &str, kind: NodeKind) -> bool {
    matches!(
        (ty, kind),
        ("string", NodeKind::Str)
            | ("number", NodeKind::Int)
            | ("object", NodeKind::Obj)
            | ("array", NodeKind::Arr)
    )
}

/// [`Json::total_cmp`] between a tree node's subtree and an external value,
/// without materialising the subtree. Mirrors the value-side order exactly:
/// numbers < strings < arrays < objects; arrays element-wise; objects as
/// sorted key→value maps (the tree side sorts its keys *by string* here —
/// symbol order is interning order, not lexicographic).
pub fn cmp_node_json(tree: &JsonTree, n: NodeId, v: &Json) -> Ordering {
    fn rank_kind(k: NodeKind) -> u8 {
        match k {
            NodeKind::Int => 0,
            NodeKind::Str => 1,
            NodeKind::Arr => 2,
            NodeKind::Obj => 3,
        }
    }
    fn rank_json(v: &Json) -> u8 {
        match v {
            Json::Num(_) => 0,
            Json::Str(_) => 1,
            Json::Array(_) => 2,
            Json::Object(_) => 3,
        }
    }
    match (tree.kind(n), v) {
        (NodeKind::Int, Json::Num(b)) => tree.num_value(n).expect("Int payload").cmp(b),
        (NodeKind::Str, Json::Str(b)) => tree.str_value(n).expect("Str payload").cmp(b.as_str()),
        (NodeKind::Arr, Json::Array(b)) => {
            for (&c, y) in tree.arr_children(n).iter().zip(b.iter()) {
                let ord = cmp_node_json(tree, c, y);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            tree.child_count(n).cmp(&b.len())
        }
        (NodeKind::Obj, Json::Object(b)) => {
            let mut entries: Vec<(&str, NodeId)> = tree.obj_children(n).collect();
            entries.sort_unstable_by(|x, y| x.0.cmp(y.0));
            for ((ka, ca), (kb, vb)) in entries.iter().zip(b.iter_sorted()) {
                let ord = ka.cmp(&kb);
                if ord != Ordering::Equal {
                    return ord;
                }
                let ord = cmp_node_json(tree, *ca, vb);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            entries.len().cmp(&b.len())
        }
        (k, v) => rank_kind(k).cmp(&rank_json(v)),
    }
}

/// [`Json::total_cmp`] between two subtrees of **one** tree, without
/// materialising either. Implements the same total order as
/// [`cmp_node_json`] — numbers < strings < arrays < objects, arrays
/// element-wise then by length, objects as *string*-sorted key→value maps
/// (symbol order is interning order, not lexicographic, so keys resolve
/// before comparison). This is the comparator the sorted index column is
/// built with; its agreement with `Json::total_cmp` is pinned by the
/// order-property suite.
pub fn cmp_nodes(tree: &JsonTree, a: NodeId, b: NodeId) -> Ordering {
    fn rank(k: NodeKind) -> u8 {
        match k {
            NodeKind::Int => 0,
            NodeKind::Str => 1,
            NodeKind::Arr => 2,
            NodeKind::Obj => 3,
        }
    }
    match (tree.kind(a), tree.kind(b)) {
        (NodeKind::Int, NodeKind::Int) => tree
            .num_value(a)
            .expect("Int payload")
            .cmp(&tree.num_value(b).expect("Int payload")),
        (NodeKind::Str, NodeKind::Str) => tree
            .str_value(a)
            .expect("Str payload")
            .cmp(tree.str_value(b).expect("Str payload")),
        (NodeKind::Arr, NodeKind::Arr) => {
            for (&ca, &cb) in tree.arr_children(a).iter().zip(tree.arr_children(b)) {
                let ord = cmp_nodes(tree, ca, cb);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            tree.child_count(a).cmp(&tree.child_count(b))
        }
        (NodeKind::Obj, NodeKind::Obj) => {
            let mut ea: Vec<(&str, NodeId)> = tree.obj_children(a).collect();
            let mut eb: Vec<(&str, NodeId)> = tree.obj_children(b).collect();
            ea.sort_unstable_by(|x, y| x.0.cmp(y.0));
            eb.sort_unstable_by(|x, y| x.0.cmp(y.0));
            for ((ka, ca), (kb, cb)) in ea.iter().zip(eb.iter()) {
                let ord = ka.cmp(kb);
                if ord != Ordering::Equal {
                    return ord;
                }
                let ord = cmp_nodes(tree, *ca, *cb);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            ea.len().cmp(&eb.len())
        }
        (ka, kb) => rank(ka).cmp(&rank(kb)),
    }
}

/// A projection: the second argument of `find` (§6 future work, basic
/// include/exclude form).
#[derive(Debug, Clone, Default)]
pub struct Projection {
    /// Paths to keep; empty = keep everything.
    pub include: Vec<Path>,
}

impl Projection {
    /// Parses `{"name": 1, "age": 1}`-style projections.
    pub fn parse_str(src: &str) -> Result<Projection, FilterError> {
        let doc = jsondata::parse(src).map_err(|e| FilterError(e.to_string()))?;
        let Some(obj) = doc.as_object() else {
            return Err(FilterError("projection must be an object".into()));
        };
        let mut include = Vec::new();
        for (k, v) in obj.iter() {
            if v.as_num() == Some(1) {
                include.push(Path::parse(k));
            } else {
                return Err(FilterError("only inclusive projections ({path: 1})".into()));
            }
        }
        Ok(Projection { include })
    }

    /// Applies the projection to one document.
    pub fn apply(&self, doc: &Json) -> Json {
        if self.include.is_empty() {
            return doc.clone();
        }
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for p in &self.include {
            if let Some(v) = resolve(doc, p) {
                insert_path(&mut pairs, &p.0, v.clone());
            }
        }
        Json::object(pairs).expect("projection paths produce distinct keys")
    }

    /// [`Projection::apply`] evaluated directly on a tree node: each include
    /// path resolves on the tree and only the *kept* subtrees are
    /// materialised (via [`JsonTree::json_at`]) — the full document is never
    /// synthesised just to be cut down. Agrees with
    /// `apply(&tree.json_at(doc))` exactly (differentially tested).
    pub fn apply_tree(&self, tree: &JsonTree, doc: NodeId) -> Json {
        if self.include.is_empty() {
            return tree.json_at(doc);
        }
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for p in &self.include {
            if let Some(n) = resolve_node(tree, doc, p) {
                insert_path(&mut pairs, &p.0, tree.json_at(n));
            }
        }
        Json::object(pairs).expect("projection paths produce distinct keys")
    }
}

/// Inserts `value` at a dotted `path` into an under-construction object's
/// pair list, creating nested objects for intermediate segments; first-wins
/// on a leaf that is already occupied. This is the shared output-assembly
/// primitive of projections — [`Projection::apply`]/[`Projection::apply_tree`]
/// here and `$project` in the `jagg` aggregation executors all build their
/// output documents through it, so assembly semantics cannot drift apart.
pub fn insert_path(pairs: &mut Vec<(String, Json)>, path: &[String], value: Json) {
    let (head, rest) = path.split_first().expect("nonempty path");
    if rest.is_empty() {
        if !pairs.iter().any(|(k, _)| k == head) {
            pairs.push((head.clone(), value));
        }
        return;
    }
    // Find or create the nested object.
    if let Some((_, sub)) = pairs.iter_mut().find(|(k, _)| k == head) {
        if let Json::Object(o) = sub {
            let mut inner: Vec<(String, Json)> =
                o.iter().map(|(k, v)| (k.to_owned(), v.clone())).collect();
            insert_path(&mut inner, rest, value);
            *sub = Json::object(inner).expect("distinct");
        }
        return;
    }
    let mut inner = Vec::new();
    insert_path(&mut inner, rest, value);
    pairs.push((head.clone(), Json::object(inner).expect("distinct")));
}

/// Where a document lives inside a [`Collection`]'s tree column: the
/// segment tree holding it and its root node within that segment. Segment
/// `0` is the initial load; every [`Collection::insert`] appends one more.
/// All segments intern through one shared table, so a [`jsondata::Sym`] is
/// comparable across the segments of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocRef {
    /// Index into [`Collection::segments`].
    pub seg: u32,
    /// The document's root node within that segment tree.
    pub node: NodeId,
}

/// A queryable collection of documents, backed by a **persistent, segmented
/// tree column**: the initial load is kept as one [`JsonTree`] (the whole
/// collection array flattened through the fused parser), and every
/// [`Collection::insert`] appends a further segment tree built through the
/// collection's shared [`Interner`] — so one symbol table spans every
/// document ever loaded, and filters evaluate on the trees directly with no
/// per-query parsing, tree building, or value traversal.
///
/// Owned [`Json`] documents are **not** kept eagerly: the value-returning
/// APIs synthesize results from the tree ([`JsonTree::json_at`]), and
/// [`Collection::docs`] materialises a compatibility snapshot lazily on
/// first use.
///
/// A collection loaded from a non-array root has defined **single-document
/// semantics**: the root value is the collection's one document. `find` and
/// `aggregate` (the `jagg` crate) share this behavior.
///
/// ## Parallel execution
///
/// Query scans run on the collection's [`jpar::Pool`] (defaulting to
/// [`Pool::auto`]): documents are dispatched in contiguous index-range
/// chunks and results spliced back in `(segment, doc)` order, so output is
/// **identical for every thread count** — a 1-thread pool (set via
/// [`Collection::set_pool`] or the `JPAR_THREADS` environment variable) is
/// the byte-identical serial oracle, and collections smaller than a chunk
/// never leave the calling thread. Per-segment whole-tree JNL evaluations
/// ([`Collection::find_refs_via_jnl`]) fan out one segment per task with
/// fully worker-owned evaluation state.
///
/// ## Snapshots
///
/// Segment trees are held behind [`Arc`]s and never mutated after they
/// are built, so **cloning a collection is cheap** (reference bumps for
/// the trees and index postings, a copy of the doc-ref vector and the
/// symbol table — no tree is ever re-built): a clone is an immutable
/// snapshot sharing all bulk storage with its origin. `jserve` builds
/// its copy-on-write snapshot isolation on exactly this property, with
/// [`Collection::adopt_segment`] as the replay primitive that carries a
/// segment built against a newer interner back onto an older clone.
pub struct Collection {
    /// The shared symbol table; every segment's interner is a snapshot of
    /// this one at its build time.
    interner: Interner,
    segments: Vec<Arc<JsonTree>>,
    doc_refs: Vec<DocRef>,
    /// The worker pool driving `find`/`find_project`/JNL scans (and the
    /// `jagg` executor over this collection).
    pool: Pool,
    /// Lazily materialised owned documents (compatibility accessor only);
    /// reset by [`Collection::insert`].
    docs_cache: OnceLock<Vec<Json>>,
    /// The collection's declared JSL schema, if any — a **promise** that
    /// every document conforms (attachment does not validate documents;
    /// pair with the gatekeeper validation paths to enforce it). The
    /// `jstat` analyzer uses it for schema-aware dead-path detection
    /// (`J004`). The *expression itself* is validated at attachment:
    /// ill-formed schemas (dangling `$ref`, precedence cycle) are rejected.
    schema: Option<jsl::RecursiveJsl>,
    /// Secondary indexes declared via [`Collection::create_index`]:
    /// per-path hash + sorted-column structures, maintained incrementally
    /// per insert-segment and rebuilt on [`Collection::compact`].
    indexes: IndexSet,
}

impl Collection {
    /// Builds from a JSON array document (each element one document).
    pub fn from_array(doc: &Json) -> Result<Collection, FilterError> {
        if !doc.is_array() {
            return Err(FilterError("collection must be a JSON array".into()));
        }
        Ok(Collection::from_json(doc))
    }

    /// Builds from any JSON document: an array root contributes one
    /// document per element, any other root is a **single-document**
    /// collection (the shared non-array-root semantics of `find` and
    /// `aggregate`).
    pub fn from_json(doc: &Json) -> Collection {
        let mut interner = Interner::new();
        let tree = JsonTree::build_into(doc, &mut interner);
        Collection::from_first_segment(tree, interner)
    }

    /// Builds from collection text through the **fused parser**: the
    /// document is lexed, interned and flattened into the tree column in
    /// one pass — no intermediate value tree is ever built. Non-array roots
    /// get the [`Collection::from_json`] single-document semantics.
    pub fn parse_str(src: &str) -> Result<Collection, FilterError> {
        let mut interner = Interner::new();
        let tree = jsondata::parse_to_tree_into(src, ParseLimits::default(), &mut interner)
            .map_err(|e| FilterError(e.to_string()))?;
        Ok(Collection::from_first_segment(tree, interner))
    }

    /// [`Collection::parse_str`] with explicit [`ParseLimits`] — the
    /// serving edge's ingestion guard: an oversized or too-deep document
    /// is rejected with [`QueryError::ParseLimit`] *before* any tree is
    /// built (the size cap is checked against the raw text length).
    pub fn parse_str_with_limits(src: &str, limits: ParseLimits) -> Result<Collection, QueryError> {
        let mut interner = Interner::new();
        let tree = jsondata::parse_to_tree_into(src, limits, &mut interner)?;
        Ok(Collection::from_first_segment(tree, interner))
    }

    fn from_first_segment(tree: JsonTree, interner: Interner) -> Collection {
        let doc_refs = match tree.kind(tree.root()) {
            NodeKind::Arr => tree
                .arr_children(tree.root())
                .iter()
                .map(|&node| DocRef { seg: 0, node })
                .collect(),
            _ => vec![DocRef {
                seg: 0,
                node: tree.root(),
            }],
        };
        Collection {
            interner,
            segments: vec![Arc::new(tree)],
            doc_refs,
            pool: Pool::auto(),
            docs_cache: OnceLock::new(),
            schema: None,
            indexes: IndexSet::default(),
        }
    }

    /// Declares the collection's JSL schema. Attachment is a contract, not
    /// a document check: callers validate inserts themselves (cf. the
    /// `stream_gatekeeper` example) and the static analyzer is entitled to
    /// treat `schema ∧ query` unsatisfiability as proof that a query path
    /// is dead on this collection.
    ///
    /// The schema *expression* is checked, fail-closed: an ill-formed one
    /// (a dangling `$ref`-style [`jsl::ast::Jsl::Var`], a precedence
    /// cycle) is rejected with a structured [`jsl::WellFormednessError`]
    /// here, so no later evaluation can panic across the governed
    /// boundary (docs/robustness.md).
    pub fn set_schema(
        &mut self,
        schema: jsl::RecursiveJsl,
    ) -> Result<(), jsl::WellFormednessError> {
        schema.well_formed()?;
        self.schema = Some(schema);
        Ok(())
    }

    /// [`Collection::set_schema`], chainable at construction time.
    pub fn with_schema(
        mut self,
        schema: jsl::RecursiveJsl,
    ) -> Result<Collection, jsl::WellFormednessError> {
        self.set_schema(schema)?;
        Ok(self)
    }

    /// Removes the declared schema.
    pub fn clear_schema(&mut self) {
        self.schema = None;
    }

    /// The declared JSL schema, if any.
    pub fn schema(&self) -> Option<&jsl::RecursiveJsl> {
        self.schema.as_ref()
    }

    /// Sets the worker pool driving this collection's query scans (and the
    /// `jagg` aggregation executor). [`Pool::serial`] restores strictly
    /// single-threaded execution — the semantic oracle the determinism
    /// suites compare every thread count against.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// [`Collection::set_pool`], chainable at construction time.
    pub fn with_pool(mut self, pool: Pool) -> Collection {
        self.pool = pool;
        self
    }

    /// The worker pool queries over this collection run on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Appends **one** document (whatever its JSON type — an array value is
    /// one array-valued document, not a batch) as a new segment tree built
    /// through the collection's shared interner, so its symbols are
    /// comparable with every existing segment. Queries see the new document
    /// immediately; results agree exactly with a from-scratch rebuild of
    /// the extended collection (differentially tested).
    pub fn insert(&mut self, doc: &Json) {
        let tree = JsonTree::build_into(doc, &mut self.interner);
        self.push_segment(tree);
    }

    /// [`Collection::insert`] from document text through the fused parser
    /// ([`jsondata::parse_to_tree_into`] with the shared interner). On a
    /// parse error the collection is unchanged (the shared table may retain
    /// symbols from the document's well-formed prefix, which is harmless).
    pub fn insert_str(&mut self, src: &str) -> Result<(), FilterError> {
        let tree = jsondata::parse_to_tree_into(src, ParseLimits::default(), &mut self.interner)
            .map_err(|e| FilterError(e.to_string()))?;
        self.push_segment(tree);
        Ok(())
    }

    /// [`Collection::insert_str`] with explicit [`ParseLimits`]: the
    /// document is rejected with [`QueryError::ParseLimit`] — before any
    /// tree build for the size cap, at the offending depth for the depth
    /// cap — and the collection is left unchanged on failure.
    pub fn insert_str_with_limits(
        &mut self,
        src: &str,
        limits: ParseLimits,
    ) -> Result<(), QueryError> {
        let tree = jsondata::parse_to_tree_into(src, limits, &mut self.interner)?;
        self.push_segment(tree);
        Ok(())
    }

    fn push_segment(&mut self, tree: JsonTree) {
        self.push_segment_arc(Arc::new(tree));
    }

    fn push_segment_arc(&mut self, tree: Arc<JsonTree>) {
        let seg = self.segments.len() as u32;
        self.doc_refs.push(DocRef {
            seg,
            node: tree.root(),
        });
        self.segments.push(tree);
        self.docs_cache = OnceLock::new();
        // Incremental index maintenance: the new segment holds exactly one
        // document, appended at the end of the ordinal space.
        self.indexes
            .add_segment(&self.segments, self.doc_refs.len() - 1, &self.doc_refs);
    }

    /// Appends an **already-built** segment tree shared with another
    /// collection — the replay primitive of snapshot-isolated serving:
    /// a compacted clone catches up with segments its origin appended
    /// while the compaction ran, without re-parsing or copying them.
    ///
    /// The segment must come from the same interner lineage: its
    /// interner snapshot has this collection's symbol table as a prefix
    /// (or is a prefix of it). Interners grow append-only and interning
    /// is monotone, so catching up means replaying the missing suffix of
    /// the segment's table — symbol indices are preserved exactly, which
    /// `debug_assert`s verify per adopted symbol. Adopting a segment
    /// from an unrelated interner is a logic error and will scramble
    /// query results (it cannot, however, cause memory unsafety).
    pub fn adopt_segment(&mut self, tree: &Arc<JsonTree>) {
        let seg_interner = tree.interner();
        for (sym, s) in seg_interner.iter_from(self.interner.len()) {
            let assigned = self.interner.intern(s);
            debug_assert_eq!(
                assigned, sym,
                "adopted segment is not from this collection's interner lineage"
            );
        }
        self.push_segment_arc(Arc::clone(tree));
    }

    /// The documents, as owned values — a **compatibility accessor**,
    /// materialised lazily from the tree column on first use and cached
    /// until the next insert. Hot paths ([`Collection::find`],
    /// [`Collection::find_project`], aggregation) never touch this cache.
    pub fn docs(&self) -> &[Json] {
        self.docs_cache
            .get_or_init(|| self.doc_refs.iter().map(|&d| self.json_of(d)).collect())
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.doc_refs.len()
    }

    /// Whether the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.doc_refs.is_empty()
    }

    /// The segment trees of the collection's tree column (segment 0 is the
    /// initial load; one more per insert). All segments share one symbol
    /// assignment. Trees are behind [`Arc`]s so snapshots can share them;
    /// `&segments()[i]` deref-coerces to `&JsonTree` wherever a plain
    /// tree is expected.
    pub fn segments(&self) -> &[Arc<JsonTree>] {
        &self.segments
    }

    /// Every document's location in the tree column, in document order.
    pub fn doc_refs(&self) -> &[DocRef] {
        &self.doc_refs
    }

    /// The collection's shared symbol table (a superset of every segment's
    /// snapshot).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The initial segment tree (compatibility accessor from the
    /// single-tree era; use [`Collection::segments`] to see inserts).
    pub fn tree(&self) -> &JsonTree {
        &self.segments[0]
    }

    /// Materialises one document from the tree column.
    pub fn json_of(&self, d: DocRef) -> Json {
        self.segments[d.seg as usize].json_at(d.node)
    }

    /// `db.collection.find(filter)`: tree-column locations of the matching
    /// documents, evaluated via [`Filter::matches_at`] — the allocation-free
    /// core `find` and the aggregation executor share. Documents are
    /// scanned in parallel chunks on the collection's pool; survivors come
    /// back spliced in `(segment, doc)` order for every thread count.
    pub fn find_refs(&self, filter: &Filter) -> Vec<DocRef> {
        expect_ungoverned(self.find_refs_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_refs`] under a [`QueryCtx`]: the scan polls the
    /// context per document, survivors charge the row budget, and worker
    /// panics come back as [`QueryError::WorkerPanicked`] instead of
    /// unwinding — the collection stays untouched and queryable.
    pub fn find_refs_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<DocRef>, QueryError> {
        self.scan_refs(ctx, |d| {
            filter.matches_at(&self.segments[d.seg as usize], d.node)
        })
    }

    /// The shared chunk-parallel document scan: keeps the refs satisfying
    /// `keep`, in document order. Polls `ctx` per document and charges
    /// surviving refs against the row budget.
    fn scan_refs(
        &self,
        ctx: &QueryCtx,
        keep: impl Fn(DocRef) -> bool + Sync,
    ) -> Result<Vec<DocRef>, QueryError> {
        let n = self.doc_refs.len();
        let chunk = self.pool.chunk_for(n, DOC_CHUNK_MIN);
        self.pool.try_flat_map_chunks(ctx, n, chunk, |r| {
            let mut poll = ctx.poller();
            let mut out = Vec::new();
            ctx.record(Counter::DocsScanned, r.len() as u64);
            for &d in &self.doc_refs[r] {
                poll.tick()?;
                if keep(d) {
                    out.push(d);
                }
            }
            ctx.charge_rows(out.len() as u64)?;
            Ok(out)
        })
    }

    /// Materialises each ref through `make`, in parallel chunks, preserving
    /// order (`find`/`find_project`/`find_via_jnl` output assembly). Polls
    /// `ctx` per document and charges each materialised value against the
    /// byte budget (a no-op traversal-free call when no budget is set).
    fn materialize_refs(
        &self,
        ctx: &QueryCtx,
        refs: Vec<DocRef>,
        make: impl Fn(DocRef) -> Json + Sync,
    ) -> Result<Vec<Json>, QueryError> {
        let chunk = self.pool.chunk_for(refs.len(), DOC_CHUNK_MIN);
        self.pool.try_flat_map_chunks(ctx, refs.len(), chunk, |r| {
            let mut poll = ctx.poller();
            let mut out = Vec::with_capacity(r.len());
            for &d in &refs[r] {
                poll.tick()?;
                let v = make(d);
                ctx.charge_json(&v)?;
                out.push(v);
            }
            Ok(out)
        })
    }

    /// `db.collection.find(filter)`: the matching documents, synthesized
    /// from the tree column (no eager document vector is consulted).
    pub fn find(&self, filter: &Filter) -> Vec<Json> {
        expect_ungoverned(self.find_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find`] under a [`QueryCtx`]: deadline/cancellation
    /// polls per scanned document, row budget charged on matches, byte
    /// budget charged on materialised output.
    pub fn find_with_ctx(&self, filter: &Filter, ctx: &QueryCtx) -> Result<Vec<Json>, QueryError> {
        let refs = self.find_refs_with_ctx(filter, ctx)?;
        self.materialize_refs(ctx, refs, |d| self.json_of(d))
    }

    /// `find(filter, projection)`: projected documents, synthesized
    /// directly from the tree ([`Projection::apply_tree`]) — only the kept
    /// subtrees are ever materialised.
    pub fn find_project(&self, filter: &Filter, projection: &Projection) -> Vec<Json> {
        expect_ungoverned(self.find_project_with_ctx(filter, projection, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_project`] under a [`QueryCtx`] (see
    /// [`Collection::find_with_ctx`] for the governance semantics; the
    /// byte budget sees only the *projected* values).
    pub fn find_project_with_ctx(
        &self,
        filter: &Filter,
        projection: &Projection,
        ctx: &QueryCtx,
    ) -> Result<Vec<Json>, QueryError> {
        let refs = self.find_refs_with_ctx(filter, ctx)?;
        self.materialize_refs(ctx, refs, |d| {
            projection.apply_tree(&self.segments[d.seg as usize], d.node)
        })
    }

    /// Evaluates the filter by compiling to JNL and running the Prop 1
    /// engine: tree-column locations of the satisfying documents. One
    /// evaluation per segment tree answers every document of that segment
    /// at once — JNL navigation is downward-only, so a formula's truth at
    /// a document node equals its truth at the root of that document
    /// parsed standalone. This is the whole-collection fast path the
    /// `jagg` leading-`$match` rides when the filter is
    /// [`Filter::jnl_exact`]. Segments evaluate concurrently on the
    /// collection's pool ([`jnl::eval::evaluate_batch`]); each worker owns
    /// its whole evaluation context, and the satisfying refs are read off
    /// the per-segment node sets in `(segment, doc)` order.
    pub fn find_refs_via_jnl(&self, filter: &Filter) -> Vec<DocRef> {
        expect_ungoverned(self.find_refs_via_jnl_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_refs_via_jnl`] under a [`QueryCtx`]: the
    /// per-segment JNL evaluations poll the context every
    /// [`jguard::POLL_STRIDE`] nodes (inside the Prop 1 walk loops), and
    /// the surviving refs charge the row budget.
    pub fn find_refs_via_jnl_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<DocRef>, QueryError> {
        let phi = filter.to_jnl();
        ctx.record(Counter::SegmentsVisited, self.segments.len() as u64);
        let sats = jnl::eval::evaluate_batch_ctx(&self.segments, &phi, &self.pool, ctx)?;
        let out: Vec<DocRef> = self
            .doc_refs
            .iter()
            .copied()
            .filter(|d| sats[d.seg as usize][d.node.index()])
            .collect();
        ctx.charge_rows(out.len() as u64)?;
        Ok(out)
    }

    /// [`Collection::find_refs_via_jnl`], materialised (the differential
    /// path used in tests/benches against [`Collection::find`]).
    pub fn find_via_jnl(&self, filter: &Filter) -> Vec<Json> {
        expect_ungoverned(self.find_via_jnl_with_ctx(filter, &QueryCtx::unlimited()))
    }

    /// [`Collection::find_via_jnl`] under a [`QueryCtx`].
    pub fn find_via_jnl_with_ctx(
        &self,
        filter: &Filter,
        ctx: &QueryCtx,
    ) -> Result<Vec<Json>, QueryError> {
        let refs = self.find_refs_via_jnl_with_ctx(filter, ctx)?;
        self.materialize_refs(ctx, refs, |d| self.json_of(d))
    }

    /// Merges the tree column into **one segment**: every document's
    /// subtree replays — symbols copied as-is through the shared interner,
    /// no string is ever re-hashed, no [`Json`] is ever materialised —
    /// into a single array-rooted [`JsonTree`]
    /// ([`JsonTree::concat_subtrees`]). Document order, query results and
    /// the symbol assignment are all preserved exactly (property-tested);
    /// only the layout changes.
    ///
    /// Compaction is what keeps insert-heavy collections fast: every
    /// [`Collection::insert`] adds a single-document segment, and
    /// per-segment work — one JNL evaluation, one canonical-label table,
    /// one parallel task *per segment* — eventually drowns the queries.
    /// After `compact()` the collection is indistinguishable from one
    /// loaded in a single parse.
    pub fn compact(&mut self) {
        if self.segments.len() <= 1 {
            return;
        }
        let mut interner = std::mem::take(&mut self.interner);
        let parts: Vec<(&JsonTree, NodeId)> = self
            .doc_refs
            .iter()
            .map(|d| (self.segments[d.seg as usize].as_ref(), d.node))
            .collect();
        let merged = JsonTree::concat_subtrees(&parts, &mut interner);
        self.interner = interner;
        self.doc_refs = merged
            .arr_children(merged.root())
            .iter()
            .map(|&node| DocRef { seg: 0, node })
            .collect();
        self.segments = vec![Arc::new(merged)];
        self.docs_cache = OnceLock::new();
        // Node ids and canonical classes all changed: indexes are rebuilt
        // from the merged segment (correctness pinned by the post-compact
        // differential sweeps).
        self.indexes.rebuild(&self.segments, &self.doc_refs);
    }
}

/// Cloning is the snapshot primitive: segment trees and index postings
/// are shared by [`Arc`] bump (never copied), the doc-ref vector and the
/// symbol table are copied (both `O(collection)` but allocation-flat —
/// the same cost every single `insert` already pays for its interner
/// snapshot), and the lazy docs cache starts empty rather than cloning
/// materialised documents the snapshot may never read.
impl Clone for Collection {
    fn clone(&self) -> Collection {
        Collection {
            interner: self.interner.clone(),
            segments: self.segments.clone(),
            doc_refs: self.doc_refs.clone(),
            pool: self.pool,
            docs_cache: OnceLock::new(),
            schema: self.schema.clone(),
            indexes: self.indexes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsondata::parse;

    fn people() -> Collection {
        Collection::from_array(
            &parse(
                r#"[
                {"name": {"first": "Sue", "last": "Kim"}, "age": 28, "hobbies": ["yoga", "chess"]},
                {"name": {"first": "John", "last": "Doe"}, "age": 32, "hobbies": ["fishing"]},
                {"name": {"first": "Ana"}, "age": 45, "hobbies": []}
            ]"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn paper_example1() {
        // db.collection.find({name: {$eq: "Sue"}}, {}) — adapted to the
        // nested name shape: {"name.first": {"$eq": "Sue"}}.
        let coll = people();
        let f = Filter::parse_str(r#"{"name.first": {"$eq": "Sue"}}"#).unwrap();
        let hits = coll.find(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("age"), Some(&Json::Num(28)));
    }

    #[test]
    fn implicit_equality_and_dotted_paths() {
        let coll = people();
        let f = Filter::parse_str(r#"{"hobbies.0": "fishing"}"#).unwrap();
        assert_eq!(coll.find(&f).len(), 1);
        let f = Filter::parse_str(r#"{"name": {"first": "Ana"}}"#).unwrap();
        // whole-subtree equality: {"first": "Ana"} (no last key!)
        assert_eq!(coll.find(&f).len(), 1);
    }

    #[test]
    fn comparison_operators() {
        let coll = people();
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$gt": 28}}"#).unwrap())
                .len(),
            2
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$gte": 28}}"#).unwrap())
                .len(),
            3
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$lt": 30}}"#).unwrap())
                .len(),
            1
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$ne": 32}}"#).unwrap())
                .len(),
            2
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$gte": 28, "$lte": 32}}"#).unwrap())
                .len(),
            2
        );
    }

    #[test]
    fn logical_operators() {
        let coll = people();
        let f =
            Filter::parse_str(r#"{"$or": [{"age": 28}, {"name.first": {"$eq": "Ana"}}]}"#).unwrap();
        assert_eq!(coll.find(&f).len(), 2);
        let f = Filter::parse_str(r#"{"$not": {"age": {"$gte": 30}}}"#).unwrap();
        assert_eq!(coll.find(&f).len(), 1);
        let f = Filter::parse_str(r#"{"$and": [{"age": {"$gt": 20}}, {"hobbies": {"$size": 1}}]}"#)
            .unwrap();
        assert_eq!(coll.find(&f).len(), 1);
    }

    #[test]
    fn in_exists_size_type() {
        let coll = people();
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$in": [28, 45]}}"#).unwrap())
                .len(),
            2
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$nin": [28, 45]}}"#).unwrap())
                .len(),
            1
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"name.last": {"$exists": "true"}}"#).unwrap())
                .len(),
            2
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"name.last": {"$exists": "false"}}"#).unwrap())
                .len(),
            1
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"hobbies": {"$size": 0}}"#).unwrap())
                .len(),
            1
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"hobbies": {"$type": "array"}}"#).unwrap())
                .len(),
            3
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"age": {"$type": "string"}}"#).unwrap())
                .len(),
            0
        );
    }

    #[test]
    fn jnl_compilation_agrees_on_equality_fragment() {
        // Every filter in the equality fragment (no order comparisons, no
        // $type) must agree with its JNL compilation evaluated by Prop 1.
        let coll = people();
        let filters = [
            r#"{"name.first": {"$eq": "Sue"}}"#,
            r#"{"name": {"first": "Ana"}}"#,
            r#"{"age": {"$in": [28, 45]}}"#,
            r#"{"age": {"$nin": [28, 45]}}"#,
            r#"{"name.last": {"$exists": "true"}}"#,
            r#"{"name.last": {"$exists": "false"}}"#,
            r#"{"hobbies": {"$size": 1}}"#,
            r#"{"$or": [{"age": 28}, {"age": 45}]}"#,
            r#"{"$not": {"hobbies.0": "yoga"}}"#,
            r#"{"age": {"$ne": 32}}"#,
        ];
        for src in filters {
            let f = Filter::parse_str(src).unwrap();
            let direct: Vec<Json> = coll.find(&f);
            let via_jnl = coll.find_via_jnl(&f);
            assert_eq!(direct, via_jnl, "filter {src}");
            // And the compiled formula is deterministic JNL.
            assert!(f.to_jnl().fragment().is_deterministic(), "filter {src}");
        }
    }

    #[test]
    fn projection() {
        let coll = people();
        let f = Filter::parse_str(r#"{"age": {"$gte": 30}}"#).unwrap();
        let p = Projection::parse_str(r#"{"name.first": 1, "age": 1}"#).unwrap();
        let out = coll.find_project(&f, &p);
        assert_eq!(out.len(), 2);
        for d in &out {
            assert!(d.get("name").unwrap().get("first").is_some());
            assert!(d.get("name").unwrap().get("last").is_none());
            assert!(d.get("age").is_some());
            assert!(d.get("hobbies").is_none());
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Filter::parse_str(r#"{"$bogus": 1}"#).is_err());
        assert!(Filter::parse_str(r#"{"a": {"$frob": 1}}"#).is_err());
        assert!(Filter::parse_str(r#"{"a": {"$size": "x"}}"#).is_err());
        assert!(Filter::parse_str("[1]").is_err());
        assert!(Projection::parse_str(r#"{"a": 0}"#).is_err());
    }

    /// The filter corpus used by the tree/value equivalence sweeps: every
    /// operator, nested paths, numeric segments, compound booleans, and
    /// whole-subtree (object/array) comparison constants.
    fn filter_corpus() -> Vec<Filter> {
        [
            r#"{"name.first": {"$eq": "Sue"}}"#,
            r#"{"name": {"first": "Ana"}}"#,
            r#"{"name": {"$eq": {"last": "Kim", "first": "Sue"}}}"#,
            r#"{"hobbies": ["yoga", "chess"]}"#,
            r#"{"hobbies.0": "fishing"}"#,
            r#"{"hobbies.2": {"$exists": "true"}}"#,
            r#"{"age": {"$gt": 28}}"#,
            r#"{"age": {"$gte": 28, "$lte": 32}}"#,
            r#"{"age": {"$lt": 30}}"#,
            r#"{"age": {"$ne": 32}}"#,
            r#"{"age": {"$in": [28, 45]}}"#,
            r#"{"age": {"$nin": [28, 45]}}"#,
            r#"{"name.last": {"$exists": "true"}}"#,
            r#"{"name.last": {"$exists": "false"}}"#,
            r#"{"hobbies": {"$size": 0}}"#,
            r#"{"hobbies": {"$size": 2}}"#,
            r#"{"hobbies": {"$type": "array"}}"#,
            r#"{"age": {"$type": "string"}}"#,
            r#"{"name": {"$type": "object"}}"#,
            r#"{"$or": [{"age": 28}, {"name.first": {"$eq": "Ana"}}]}"#,
            r#"{"$and": [{"age": {"$gt": 20}}, {"hobbies": {"$size": 1}}]}"#,
            r#"{"$not": {"age": {"$gte": 30}}}"#,
            r#"{"age": {"$not": {"$lt": 30}}}"#,
            r#"{"salary": {"$gt": 0}}"#,
            r#"{"name": {"$gt": {"first": "Bob"}}}"#,
            r#"{"hobbies": {"$lte": ["zzz"]}}"#,
        ]
        .iter()
        .map(|src| Filter::parse_str(src).expect("corpus filter parses"))
        .collect()
    }

    #[test]
    fn matches_tree_agrees_with_matches_on_the_corpus() {
        // Per-document equivalence: the tree-backed evaluation must decide
        // exactly like the value-backed one on every (filter, doc) pair.
        let coll = people();
        for f in filter_corpus() {
            for d in coll.docs() {
                let tree = JsonTree::build(d);
                assert_eq!(f.matches(d), f.matches_tree(&tree), "filter {f:?} on {d}");
            }
            // And collection-level: find (tree column) == value filtering.
            let via_tree: Vec<Json> = coll.find(&f);
            let via_value: Vec<Json> = coll
                .docs()
                .iter()
                .filter(|d| f.matches(d))
                .cloned()
                .collect();
            assert_eq!(via_tree, via_value, "filter {f:?}");
        }
    }

    #[test]
    fn matches_tree_agrees_on_random_documents() {
        // Random-document sweep, including docs whose shapes the filters'
        // paths only partially fit (missing keys, type mismatches, numeric
        // segments over objects).
        let filters = filter_corpus();
        for seed in 0..80u64 {
            let doc = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(seed, 60));
            let tree = JsonTree::build(&doc);
            for f in &filters {
                assert_eq!(
                    f.matches(&doc),
                    f.matches_tree(&tree),
                    "seed {seed}, filter {f:?} on {doc}"
                );
            }
        }
    }

    #[test]
    fn parse_str_collection_equals_from_array() {
        // The fused constructor and the value constructor must answer every
        // query identically (and expose equal documents).
        let src = r#"[
            {"name": {"first": "Sue", "last": "Kim"}, "age": 28, "hobbies": ["yoga", "chess"]},
            {"name": {"first": "John", "last": "Doe"}, "age": 32, "hobbies": ["fishing"]},
            {"name": {"first": "Ana"}, "age": 45, "hobbies": []}
        ]"#;
        let fused = Collection::parse_str(src).unwrap();
        let two_pass = Collection::from_array(&parse(src).unwrap()).unwrap();
        assert_eq!(fused.docs(), two_pass.docs());
        assert!(fused.tree().identical(two_pass.tree()));
        for f in filter_corpus() {
            assert_eq!(fused.find(&f), two_pass.find(&f), "filter {f:?}");
            assert_eq!(
                fused.find_via_jnl(&f),
                two_pass.find_via_jnl(&f),
                "filter {f:?}"
            );
        }
        // Malformed text is rejected; `from_array` still insists on arrays.
        assert!(Collection::parse_str("[1, 2").is_err());
        assert!(Collection::from_array(&parse(r#"{"not": "an array"}"#).unwrap()).is_err());
    }

    #[test]
    fn non_array_roots_are_single_document_collections() {
        // The shared single-document semantics of `find` and `aggregate`:
        // a non-array root IS the collection's one document.
        let src = r#"{"name": {"first": "Sue"}, "age": 28, "hobbies": ["yoga"]}"#;
        let coll = Collection::parse_str(src).unwrap();
        assert_eq!(coll.len(), 1);
        assert_eq!(coll.docs(), &[parse(src).unwrap()]);
        let hit = Filter::parse_str(r#"{"name.first": "Sue"}"#).unwrap();
        let miss = Filter::parse_str(r#"{"age": {"$gt": 40}}"#).unwrap();
        assert_eq!(coll.find(&hit).len(), 1);
        assert_eq!(coll.find(&miss).len(), 0);
        assert_eq!(coll.find_via_jnl(&hit).len(), 1);
        // The value constructor agrees, including on scalar roots.
        let scalar = Collection::from_json(&Json::Num(7));
        assert_eq!(scalar.docs(), &[Json::Num(7)]);
        assert_eq!(
            scalar
                .find(&Filter::parse_str(r#"{"x": 1}"#).unwrap())
                .len(),
            0
        );
    }

    #[test]
    fn insert_matches_from_scratch_rebuild() {
        let mut coll = people();
        coll.insert(&parse(r#"{"name": {"first": "Wei"}, "age": 45, "hobbies": ["go"]}"#).unwrap());
        coll.insert_str(r#"{"name": {"first": "Ivy", "last": "Kim"}, "age": 28, "hobbies": []}"#)
            .unwrap();
        assert!(coll.insert_str(r#"{"bad" 1}"#).is_err());
        assert_eq!(coll.len(), 5);
        assert_eq!(coll.segments().len(), 3);

        // From-scratch rebuild over the materialised documents.
        let rebuilt = Collection::from_array(&Json::Array(coll.docs().to_vec())).unwrap();
        assert_eq!(coll.docs(), rebuilt.docs());
        for f in filter_corpus() {
            assert_eq!(coll.find(&f), rebuilt.find(&f), "filter {f:?}");
            assert_eq!(
                coll.find_via_jnl(&f),
                rebuilt.find_via_jnl(&f),
                "filter {f:?}"
            );
        }
        // Symbols are shared across segments: a key interned by the initial
        // load resolves to the same symbol in an inserted segment's table.
        let age = coll.interner().lookup("age").unwrap();
        assert_eq!(coll.segments()[1].sym("age"), Some(age));
        assert_eq!(coll.segments()[2].sym("age"), Some(age));
    }

    #[test]
    fn find_project_synthesizes_from_tree() {
        // apply_tree == apply on the materialised document, for every doc
        // and a non-trivial include set (incl. missing paths).
        let coll = people();
        let p = Projection::parse_str(r#"{"name.first": 1, "age": 1, "name.last": 1}"#).unwrap();
        let all = Filter::parse_str(r#"{"age": {"$exists": "true"}}"#).unwrap();
        let via_tree = coll.find_project(&all, &p);
        let via_value: Vec<Json> = coll.docs().iter().map(|d| p.apply(d)).collect();
        assert_eq!(via_tree, via_value);
        // Empty include keeps whole documents.
        let keep_all = Projection::default();
        assert_eq!(coll.find_project(&all, &keep_all), coll.docs());
    }

    #[test]
    fn jnl_exact_fragment_is_honest() {
        // Exact filters: one whole-collection JNL evaluation must agree
        // with direct matching — already covered by
        // `jnl_compilation_agrees_on_equality_fragment`; here we pin the
        // classifier itself on both sides of the boundary.
        for (src, exact) in [
            (r#"{"name.first": {"$eq": "Sue"}}"#, true),
            (r#"{"age": {"$ne": 32}}"#, true),
            (r#"{"age": {"$in": [28, 45]}}"#, true),
            (r#"{"name.last": {"$exists": "false"}}"#, true),
            (r#"{"$or": [{"age": 28}, {"name.first": "Ana"}]}"#, true),
            (r#"{"age": {"$gt": 28}}"#, false),
            (r#"{"hobbies": {"$size": 2}}"#, false),
            (r#"{"hobbies": {"$type": "array"}}"#, false),
            (r#"{"hobbies.0": "yoga"}"#, false),
            (r#"{"$or": [{"age": 28}, {"age": {"$lt": 3}}]}"#, false),
        ] {
            assert_eq!(
                Filter::parse_str(src).unwrap().jnl_exact(),
                exact,
                "filter {src}"
            );
        }
    }

    #[test]
    fn missing_paths_never_match_comparisons() {
        let coll = people();
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"salary": {"$gt": 0}}"#).unwrap())
                .len(),
            0
        );
        assert_eq!(
            coll.find(&Filter::parse_str(r#"{"salary": {"$ne": 1}}"#).unwrap())
                .len(),
            0,
            "$ne still requires the path to exist in this dialect"
        );
    }
}
