//! Symbolic DFAs over interval-partitioned alphabets, with the boolean
//! language algebra the satisfiability engines need: intersection, union,
//! complement, emptiness, universality, equivalence and shortest-witness
//! extraction.
//!
//! The alphabet (all non-surrogate scalar values) is partitioned into the
//! coarsest set of intervals on which every transition of the source NFA is
//! constant, so subset construction runs over a handful of "symbols" even
//! though Σ has a million characters.

use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;

use crate::classes::CharClass;
use crate::nfa::{Nfa, Transition};

/// Determinisation state cap. The paper's own bounds (PSPACE/EXPSPACE
/// satisfiability) show exponential blowup is unavoidable in the worst case;
/// we refuse rather than thrash.
pub const MAX_DFA_STATES: usize = 1 << 20;

/// Error raised when determinisation exceeds its state budget
/// ([`MAX_DFA_STATES`], or the explicit cap of
/// [`Dfa::try_from_nfa_capped`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaTooLarge {
    /// Number of states reached before giving up.
    pub reached: usize,
}

impl fmt::Display for DfaTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DFA construction exceeded its state budget (reached {})",
            self.reached
        )
    }
}

impl std::error::Error for DfaTooLarge {}

/// A complete deterministic automaton over an interval partition of Σ.
#[derive(Clone)]
pub struct Dfa {
    /// Sorted, disjoint intervals jointly covering every valid scalar value.
    intervals: Vec<(u32, u32)>,
    /// `trans[s][i]`: successor of state `s` on any character in interval `i`.
    trans: Vec<Vec<u32>>,
    /// Accepting flags.
    accept: Vec<bool>,
    /// Start state.
    start: u32,
}

impl Dfa {
    /// Determinises an NFA (panicking wrapper around [`Dfa::try_from_nfa`];
    /// use the fallible form where adversarial patterns are possible).
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        Dfa::try_from_nfa(nfa).expect("regex too complex to determinise")
    }

    /// Determinises an NFA via subset construction over the interval
    /// partition induced by the NFA's character classes.
    pub fn try_from_nfa(nfa: &Nfa) -> Result<Dfa, DfaTooLarge> {
        Dfa::try_from_nfa_capped(nfa, MAX_DFA_STATES)
    }

    /// [`Dfa::try_from_nfa`] with an explicit state cap — the edge-matching
    /// tier ([`crate::bitset`]) uses a much smaller budget than the language
    /// algebra, refusing early instead of materialising huge automata.
    pub fn try_from_nfa_capped(nfa: &Nfa, max_states: usize) -> Result<Dfa, DfaTooLarge> {
        let intervals = partition_for(nfa);

        // Dead state is always index 0.
        let mut trans: Vec<Vec<u32>> = vec![vec![0; intervals.len()]];
        let mut accept = vec![false];
        let mut index: HashMap<Vec<usize>, u32> = HashMap::new();

        let mut start_set = vec![nfa.start];
        let mut on = vec![false; nfa.state_count()];
        on[nfa.start] = true;
        nfa.eps_closure(&mut start_set, &mut on);
        start_set.sort_unstable();

        let mut queue: VecDeque<Vec<usize>> = VecDeque::new();
        let start_id = 1u32;
        index.insert(start_set.clone(), start_id);
        trans.push(vec![0; intervals.len()]);
        accept.push(start_set.contains(&nfa.accept));
        queue.push_back(start_set);

        while let Some(set) = queue.pop_front() {
            let sid = index[&set];
            for (i, &(lo, _hi)) in intervals.iter().enumerate() {
                // The interval is constant across all NFA classes, so any
                // representative character decides membership.
                let repr = char::from_u32(lo).expect("intervals exclude surrogates");
                let mut next: Vec<usize> = Vec::new();
                let mut on_next = vec![false; nfa.state_count()];
                for &s in &set {
                    for t in &nfa.trans[s] {
                        if let Transition::Char(cc, to) = t {
                            if cc.contains(repr) && !on_next[*to] {
                                on_next[*to] = true;
                                next.push(*to);
                            }
                        }
                    }
                }
                if next.is_empty() {
                    continue; // stays at dead state 0
                }
                nfa.eps_closure(&mut next, &mut on_next);
                next.sort_unstable();
                let nid = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = trans.len() as u32;
                        if trans.len() >= max_states {
                            return Err(DfaTooLarge {
                                reached: trans.len(),
                            });
                        }
                        trans.push(vec![0; intervals.len()]);
                        accept.push(next.contains(&nfa.accept));
                        index.insert(next.clone(), id);
                        queue.push_back(next);
                        id
                    }
                };
                trans[sid as usize][i] = nid;
            }
        }

        Ok(Dfa {
            intervals,
            trans,
            accept,
            start: start_id,
        })
    }

    /// Number of states (including the dead state).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Anchored membership.
    pub fn is_match(&self, s: &str) -> bool {
        let mut cur = self.start;
        for c in s.chars() {
            let Some(i) = self.interval_of(c) else {
                return false;
            };
            cur = self.trans[cur as usize][i];
        }
        self.accept[cur as usize]
    }

    fn interval_of(&self, c: char) -> Option<usize> {
        let v = c as u32;
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
    }

    /// `L(self) = ∅`?
    pub fn is_empty(&self) -> bool {
        self.find_accepting_path().is_none()
    }

    /// `L(self) = Σ*`?
    pub fn is_universal(&self) -> bool {
        self.complement().is_empty()
    }

    /// A shortest word in the language, if any (BFS; interval representatives
    /// are chosen to be readable where possible).
    pub fn example(&self) -> Option<String> {
        self.find_accepting_path()
    }

    fn find_accepting_path(&self) -> Option<String> {
        let n = self.state_count();
        let mut visited = vec![false; n];
        let mut back: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut queue = VecDeque::new();
        visited[self.start as usize] = true;
        queue.push_back(self.start);
        let mut found: Option<u32> = None;
        if self.accept[self.start as usize] {
            found = Some(self.start);
        }
        'bfs: while let Some(s) = queue.pop_front() {
            if found.is_some() {
                break;
            }
            for (i, &to) in self.trans[s as usize].iter().enumerate() {
                if !visited[to as usize] {
                    visited[to as usize] = true;
                    back[to as usize] = Some((s, i));
                    if self.accept[to as usize] {
                        found = Some(to);
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        let mut cur = found?;
        let mut chars = Vec::new();
        while let Some((prev, i)) = back[cur as usize] {
            let (lo, hi) = self.intervals[i];
            let c = CharClass::from_ranges([(lo, hi)])
                .example()
                .expect("interval nonempty");
            chars.push(c);
            cur = prev;
        }
        chars.reverse();
        Some(chars.into_iter().collect())
    }

    /// Converts the automaton back to a regular expression by Kleene's
    /// state-elimination construction. Needed by the Theorem 1 translation,
    /// where `additionalProperties` requires a *regex* for the complement
    /// `C` of the keys covered by `properties`/`patternProperties` — a
    /// language we can only compute on DFAs.
    ///
    /// The result can be large (state elimination is worst-case
    /// exponential) but is exact: `L(to_regex(d)) = L(d)`.
    pub fn to_regex(&self) -> crate::ast::Regex {
        use crate::ast::Regex as R;
        let n = self.state_count();
        // GNFA edges as Option<Regex>, plus fresh start (n) and accept (n+1).
        let size = n + 2;
        let mut edge: Vec<Vec<Option<R>>> = vec![vec![None; size]; size];
        let add = |slot: &mut Option<R>, r: R| {
            if r.is_empty_language() {
                return;
            }
            *slot = Some(match slot.take() {
                None => r,
                Some(prev) => R::alt(vec![prev, r]),
            });
        };
        for (trans_row, edge_row) in self.trans.iter().zip(edge.iter_mut()) {
            for (i, &to) in trans_row.iter().enumerate() {
                let (lo, hi) = self.intervals[i];
                let class = crate::classes::CharClass::from_ranges([(lo, hi)]);
                add(&mut edge_row[to as usize], R::Class(class));
            }
        }
        add(&mut edge[n][self.start as usize], R::Epsilon);
        for (s, &acc) in self.accept.iter().enumerate() {
            if acc {
                add(&mut edge[s][n + 1], R::Epsilon);
            }
        }
        // Eliminate original states one by one.
        for k in 0..n {
            let self_loop = edge[k][k].clone();
            let loop_star = self_loop.map(|r| R::Star(Box::new(r)));
            let incoming: Vec<(usize, R)> = (0..size)
                .filter(|&i| i != k)
                .filter_map(|i| edge[i][k].clone().map(|r| (i, r)))
                .collect();
            let outgoing: Vec<(usize, R)> = (0..size)
                .filter(|&j| j != k)
                .filter_map(|j| edge[k][j].clone().map(|r| (j, r)))
                .collect();
            for (i, rin) in &incoming {
                for (j, rout) in &outgoing {
                    let mut parts = vec![rin.clone()];
                    if let Some(star) = &loop_star {
                        parts.push(star.clone());
                    }
                    parts.push(rout.clone());
                    let through = R::concat(parts);
                    let slot = &mut edge[*i][*j];
                    *slot = Some(match slot.take() {
                        None => through,
                        Some(prev) => R::alt(vec![prev, through]),
                    });
                }
            }
            for row in edge.iter_mut() {
                row[k] = None;
            }
            for slot in edge[k].iter_mut() {
                *slot = None;
            }
        }
        edge[n][n + 1].take().unwrap_or(R::Empty)
    }

    /// Up to `count` distinct words of the language, shortest-first.
    /// Used by satisfiability engines to measure the "capacity" of a key
    /// region and to synthesise distinct sibling keys.
    ///
    /// Breadth-first over `(state, word)` pairs. The live-state set is
    /// precomputed once (one reverse reachability pass) instead of a full
    /// forward scan per transition, and duplicates are filtered through a
    /// hash set instead of a linear scan of the output. The search breadth
    /// is bounded by a **deterministic frontier cap** of `64 × count`
    /// entries per length: each round expands frontier entries in order and
    /// stops expanding once the cap is reached, so enumeration of very wide
    /// languages is best-effort beyond the cap but always reproducible.
    pub fn examples(&self, count: usize) -> Vec<String> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        let live = self.live_states();
        let cap = count.saturating_mul(64);
        let mut seen: HashSet<String> = HashSet::new();
        let mut frontier: Vec<(u32, String)> = vec![(self.start, String::new())];
        let max_len = self.state_count() + count;
        for _ in 0..=max_len {
            for (s, w) in &frontier {
                if self.accept[*s as usize] && seen.insert(w.clone()) {
                    out.push(w.clone());
                    if out.len() >= count {
                        return out;
                    }
                }
            }
            let mut next = Vec::new();
            for (s, w) in frontier {
                if next.len() >= cap {
                    break; // deterministic breadth cap (entries kept in order)
                }
                for (i, &to) in self.trans[s as usize].iter().enumerate() {
                    // Skip transitions that cannot reach acceptance.
                    if !live[to as usize] {
                        continue;
                    }
                    let (lo, hi) = self.intervals[i];
                    let take = ((hi - lo + 1) as usize).min(count);
                    let mut added = 0usize;
                    let mut v = lo;
                    while added < take && v <= hi {
                        if let Some(c) = char::from_u32(v) {
                            let mut w2 = w.clone();
                            w2.push(c);
                            next.push((to, w2));
                            added += 1;
                        }
                        v += 1;
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// `live[s]`: some accepting state is reachable from `s`. One backward
    /// BFS from the accepting states over reversed transitions —
    /// `O(states × intervals)` total, replacing the per-transition forward
    /// scans that made enumeration quadratic in the state count.
    fn live_states(&self) -> Vec<bool> {
        let n = self.state_count();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, row) in self.trans.iter().enumerate() {
            for &to in row {
                rev[to as usize].push(s as u32);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        for (s, &acc) in self.accept.iter().enumerate() {
            if acc {
                live[s] = true;
                stack.push(s as u32);
            }
        }
        while let Some(x) = stack.pop() {
            for &p in &rev[x as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// The complement automaton (`Σ* \ L(self)`).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// Product automaton accepting `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Product automaton accepting `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Product automaton accepting `L(self) \ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// Language equivalence: symmetric difference empty.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }

    /// `L(self) ⊆ L(other)`?
    pub fn subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty()
    }

    fn product(&self, other: &Dfa, acc: impl Fn(bool, bool) -> bool) -> Dfa {
        // Refine the two interval partitions into a common one.
        let (intervals, map_a, map_b) = refine(&self.intervals, &other.intervals);
        // Reachable product construction.
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue = VecDeque::new();
        let start_pair = (self.start, other.start);
        index.insert(start_pair, 0);
        trans.push(vec![u32::MAX; intervals.len()]);
        accept.push(acc(
            self.accept[self.start as usize],
            other.accept[other.start as usize],
        ));
        queue.push_back(start_pair);
        while let Some((a, b)) = queue.pop_front() {
            let sid = index[&(a, b)];
            for i in 0..intervals.len() {
                let na = self.trans[a as usize][map_a[i]];
                let nb = other.trans[b as usize][map_b[i]];
                let nid = match index.get(&(na, nb)) {
                    Some(&id) => id,
                    None => {
                        let id = trans.len() as u32;
                        index.insert((na, nb), id);
                        trans.push(vec![u32::MAX; intervals.len()]);
                        accept.push(acc(self.accept[na as usize], other.accept[nb as usize]));
                        queue.push_back((na, nb));
                        id
                    }
                };
                trans[sid as usize][i] = nid;
            }
        }
        Dfa {
            intervals,
            trans,
            accept,
            start: 0,
        }
    }
}

impl fmt::Debug for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dfa({} states, {} intervals, start {})",
            self.state_count(),
            self.intervals.len(),
            self.start
        )
    }
}

/// The coarsest interval partition of Σ on which every character class of
/// `nfa` is constant.
fn partition_for(nfa: &Nfa) -> Vec<(u32, u32)> {
    // Cut points: starts of class ranges and the positions just after their
    // ends.
    let mut cuts: Vec<u32> = Vec::new();
    for ts in &nfa.trans {
        for t in ts {
            if let Transition::Char(cc, _) = t {
                for &(lo, hi) in cc.ranges() {
                    cuts.push(lo);
                    cuts.push(hi + 1);
                }
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    // Split the valid scalar space at the cut points.
    let mut out = Vec::new();
    for &(blo, bhi) in CharClass::any().ranges() {
        let mut lo = blo;
        for &cut in &cuts {
            if cut > lo && cut <= bhi {
                out.push((lo, cut - 1));
                lo = cut;
            }
        }
        if lo <= bhi {
            out.push((lo, bhi));
        }
    }
    out
}

/// Common refinement of two partitions; returns (merged, index-map-a,
/// index-map-b) with `merged[i] ⊆ a[map_a[i]]` and `merged[i] ⊆ b[map_b[i]]`.
fn refine(a: &[(u32, u32)], b: &[(u32, u32)]) -> (Vec<(u32, u32)>, Vec<usize>, Vec<usize>) {
    let mut merged = Vec::new();
    let mut map_a = Vec::new();
    let mut map_b = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (alo, ahi) = a[i];
        let (blo, bhi) = b[j];
        let lo = alo.max(blo);
        let hi = ahi.min(bhi);
        debug_assert!(lo <= hi, "partitions cover the same space");
        merged.push((lo, hi));
        map_a.push(i);
        map_b.push(j);
        if ahi < bhi {
            i += 1;
        } else if bhi < ahi {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    (merged, map_a, map_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;

    fn dfa(pat: &str) -> Dfa {
        Regex::parse(pat).unwrap().to_dfa()
    }

    #[test]
    fn dfa_matching_agrees_with_nfa() {
        for pat in [
            "a(b|c)a",
            "(0|1)+",
            "[a-z]*@ciws\\.cl",
            "a{2,4}b?",
            "(ab|a)b*",
        ] {
            let r = Regex::parse(pat).unwrap();
            let nfa = r.compile();
            let d = r.to_dfa();
            for w in [
                "",
                "a",
                "aba",
                "aca",
                "ada",
                "01",
                "2",
                "x@ciws.cl",
                "aab",
                "ab",
                "abb",
                "aaaa",
            ] {
                assert_eq!(nfa.is_match(w), d.is_match(w), "pattern {pat}, word {w}");
            }
        }
    }

    #[test]
    fn emptiness() {
        assert!(Regex::Empty.to_dfa().is_empty());
        assert!(!dfa("a*").is_empty());
        // a ∩ b = ∅
        assert!(dfa("a").intersect(&dfa("b")).is_empty());
        // a(b|c)a ∩ ab*a = {aba}
        let both = dfa("a(b|c)a").intersect(&dfa("ab*a"));
        assert!(!both.is_empty());
        assert_eq!(both.example(), Some("aba".into()));
    }

    #[test]
    fn universality() {
        assert!(Regex::sigma_star().to_dfa().is_universal());
        assert!(!dfa("a*").is_universal());
        // a* ∪ complement(a*) is universal.
        let a_star = dfa("a*");
        assert!(a_star.union(&a_star.complement()).is_universal());
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa("(0|1)+");
        let c = d.complement();
        for w in ["", "0", "01", "2", "abc"] {
            assert_eq!(d.is_match(w), !c.is_match(w), "word {w}");
        }
    }

    #[test]
    fn difference_and_subset() {
        let all_words = dfa("[a-c]*");
        let no_b = dfa("[ac]*");
        assert!(no_b.subset_of(&all_words));
        assert!(!all_words.subset_of(&no_b));
        let diff = all_words.difference(&no_b);
        let w = diff.example().unwrap();
        assert!(w.contains('b'));
    }

    #[test]
    fn equivalence() {
        assert!(dfa("(a|b)*").equivalent(&dfa("(b|a)*")));
        assert!(dfa("aa*").equivalent(&dfa("a+")));
        assert!(!dfa("a*").equivalent(&dfa("a+")));
    }

    #[test]
    fn example_is_shortest() {
        assert_eq!(dfa("a{3}|a{5}").example(), Some("aaa".into()));
        assert_eq!(dfa("a*").example(), Some(String::new()));
        assert_eq!(dfa("(b|c)a").example().map(|s| s.len()), Some(2));
    }

    #[test]
    fn theorem1_complement_construction() {
        // The Theorem 1 translation needs C = ¬(k1 | ... | km | r1 | ... | rl):
        // the keys covered by neither properties nor patternProperties.
        let props = dfa("name");
        let pattern_props = dfa("a(b|c)a");
        let c = props.union(&pattern_props).complement();
        assert!(c.is_match("age"));
        assert!(!c.is_match("name"));
        assert!(!c.is_match("aba"));
        assert!(c.is_match("abba"));
    }

    #[test]
    fn to_regex_round_trips_language() {
        for pat in ["a(b|c)a", "(0|1)+", "x?y{2}", "[a-c]*b"] {
            let d = dfa(pat);
            let back = d.to_regex();
            let d2 = back.to_dfa();
            assert!(d.equivalent(&d2), "pattern {pat} → {back}");
        }
        // The Theorem 1 complement: keys covered by neither `name` nor
        // `a(b|c)a`, as a usable regex.
        let c = dfa("name").union(&dfa("a(b|c)a")).complement();
        let c_re = c.to_regex();
        let cd = c_re.to_dfa();
        assert!(cd.is_match("age"));
        assert!(!cd.is_match("name"));
        assert!(!cd.is_match("aca"));
        assert!(cd.equivalent(&c));
    }

    #[test]
    fn examples_enumerates_distinct_words() {
        let d = dfa("a|bb|ccc");
        let got = d.examples(3);
        assert_eq!(
            got,
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()]
        );
        assert_eq!(d.examples(10).len(), 3, "finite language saturates");
        // Infinite language yields as many as asked.
        assert_eq!(dfa("x+").examples(5).len(), 5);
        // Wide single-position class.
        assert_eq!(dfa("[a-z]").examples(4).len(), 4);
        assert!(Regex::Empty.to_dfa().examples(3).is_empty());
    }

    #[test]
    fn partition_is_small() {
        let d = dfa("[a-z]+|[0-9]{2}");
        // a handful of intervals, not one per character
        assert!(d.intervals.len() < 12, "{} intervals", d.intervals.len());
    }

    #[test]
    fn unicode_membership() {
        let d = dfa("[α-ω]+x");
        assert!(d.is_match("αβx"));
        assert!(!d.is_match("αβ"));
        assert!(!d.is_match("abx"));
    }
}
