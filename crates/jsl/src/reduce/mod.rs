//! Executable versions of the paper's hardness reductions for JSL.
//!
//! * [`qbf`] — QBF (3CNF) → JSL satisfiability (the Proposition 7
//!   PSPACE-hardness construction from the appendix).
//! * [`circuit`] — boolean circuit value → recursive JSL evaluation
//!   (the Proposition 9 PTIME-hardness construction).

pub mod circuit;
pub mod qbf;
