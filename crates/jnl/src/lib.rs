//! # jnl — JSON Navigation Logic
//!
//! The paper's first core contribution (§4): a navigational logic over JSON
//! trees capturing what practical systems (MongoDB's `find`, JSONPath,
//! Python-style access) actually do, with precisely understood complexity.
//!
//! * [`ast`] — the logic itself: deterministic core (`X_w`, `X_i`,
//!   composition, tests, subtree equalities) plus the non-deterministic
//!   (`X_e`, `X_{i:j}`) and recursive (`(α)*`) extensions of §4.3.
//! * [`parser`] — a concrete syntax (`[@"name" ; @"first"]`, `eqdoc(…)`).
//! * [`eval`] — four engines matching the paper's complexity landscape:
//!   reference oracle, `O(|J|·|φ|)` deterministic (Prop 1), `O(|J|·|φ|)`
//!   PDL-style for the equality-free extensions, and the cubic full-logic
//!   engine (Prop 3). [`eval::evaluate`] dispatches automatically.
//!
//!   All engines share [`eval::EvalContext`], whose edge tests ride the
//!   tree's interned key symbols (`jsondata::Sym`): key steps resolve to a
//!   symbol once at compile time and walk with `u32` binary searches, and
//!   every regex edge label compiles **once per (query, tree)** to a DFA
//!   evaluated over the whole symbol table up front (`relex::SymBitset`) —
//!   each edge test in the inner loops is then a single bit load, with a
//!   lazy per-`(regex, symbol)` memo as the per-regex fallback when
//!   determinisation exceeds `relex::bitset::MAX_EDGE_DFA_STATES`. The
//!   paper's `O(1)` edge-test assumption is therefore met by construction.
//! * [`sat`] — satisfiability for the deterministic fragment (NP,
//!   Prop 2) with verified witnesses. (The non-deterministic and recursive
//!   decision procedures live in the `jsl` crate, via the Theorem 2
//!   translation, mirroring the paper's own proof route.)
//! * [`reduce`] — executable versions of the hardness reductions:
//!   3SAT (Prop 2) and two-counter machines (Prop 4).
//!
//! ```
//! use jsondata::{parse, JsonTree};
//! use jnl::{parse_unary, eval::check_root};
//!
//! let doc = parse(r#"{"name": {"first": "Sue"}, "age": 28}"#).unwrap();
//! let tree = JsonTree::build(&doc);
//!
//! // "the person is named Sue and has an age field"
//! let phi = parse_unary(r#"eqdoc(@"name" ; @"first", "Sue") & [@"age"]"#).unwrap();
//! assert!(check_root(&tree, &phi));
//! ```

pub mod ast;
pub mod bitset;
pub mod eval;
pub mod gen;
pub mod parser;
pub mod reduce;
pub mod sat;

pub use ast::{Binary, Fragment, Unary};
pub use eval::{check_root, evaluate, selected_nodes, EvalError};
pub use parser::{parse_binary, parse_unary, JnlParseError};
pub use sat::containment::{contained_in, equivalent, Containment};
pub use sat::{det::sat_deterministic, SatResult};
