//! The §6 "Documenting APIs" scenario: an API gateway that (1) validates
//! request payloads against a JSON Schema, (2) reports precise violations,
//! and (3) *learns* a schema from observed traffic (the paper's §5.2
//! future-work item, implemented in `jschema::infer`).
//!
//! ```sh
//! cargo run --example api_gateway
//! ```

use json_foundations::schema::{infer, schema_to_jsl, validate, Schema};
use jsondata::{parse, JsonTree};

fn main() {
    // The gateway's published contract for POST /users.
    let contract = Schema::parse_str(
        r#"{
        "type": "object",
        "required": ["username", "email"],
        "properties": {
            "username": {"type": "string", "pattern": "[a-z_][a-z0-9_]{2,15}"},
            "email": {"type": "string", "pattern": "[A-z0-9.]+@[A-z0-9.]+"},
            "age": {"type": "number", "minimum": 13},
            "tags": {"type": "array", "additionalItems": {"type": "string"},
                     "uniqueItems": "true"}
        },
        "additionalProperties": {"not": {}}
    }"#,
    )
    .expect("contract parses");

    let requests = [
        r#"{"username": "sue_k", "email": "sue@ciws.cl", "age": 28}"#,
        r#"{"username": "X", "email": "sue@ciws.cl"}"#,
        r#"{"username": "john_doe", "email": "not-an-email", "age": 12}"#,
        r#"{"username": "ana", "email": "a@b.c", "tags": ["vip", "vip"]}"#,
        r#"{"username": "wei", "email": "w@x.y", "debug": 1}"#,
    ];
    println!("== validating requests against the contract ==");
    for (i, req) in requests.iter().enumerate() {
        let doc = parse(req).expect("request is JSON");
        let violations = validate(&contract, &doc).expect("schema is resolvable");
        if violations.is_empty() {
            println!("request {i}: accepted");
        } else {
            println!("request {i}: rejected");
            for v in violations {
                println!("    {v}");
            }
        }
    }

    // Theorem 1 in production: the contract as a JSL formula gives a second,
    // independently implemented validator for free.
    let delta = schema_to_jsl(&contract).expect("contract translates");
    println!("\n== cross-check through JSL (Theorem 1) ==");
    for (i, req) in requests.iter().enumerate() {
        let doc = parse(req).unwrap();
        let ok_schema = validate(&contract, &doc).unwrap().is_empty();
        let ok_jsl = delta.check_root(&JsonTree::build(&doc));
        assert_eq!(ok_schema, ok_jsl, "the two validators must agree");
        println!("request {i}: schema={ok_schema} jsl={ok_jsl}");
    }

    // Learning a contract from observed responses.
    println!("\n== inferring a schema from observed traffic ==");
    let observed: Vec<_> = [
        r#"{"id": 1, "user": {"name": "Sue"}, "ok": 1}"#,
        r#"{"id": 2, "user": {"name": "John", "title": "Dr"}, "ok": 0}"#,
        r#"{"id": 3, "user": {"name": "Ana"}, "ok": 1, "warnings": ["slow"]}"#,
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect();
    let learned = infer(&observed);
    println!("required keys: {:?}", learned.required);
    println!(
        "properties   : {:?}",
        learned
            .properties
            .iter()
            .map(|(k, _)| k)
            .collect::<Vec<_>>()
    );
    for doc in &observed {
        assert!(json_foundations::schema::is_valid(&learned, doc).unwrap());
    }
    println!(
        "learned schema accepts all {} observed documents",
        observed.len()
    );
}
