//! Containment and equivalence for deterministic JNL, by reduction to
//! satisfiability: `φ ⊑ ψ` iff `φ ∧ ¬ψ` is unsatisfiable. The paper poses
//! containment as one of the static-analysis tasks its satisfiability
//! results are for (§4.2); with Proposition 2 this puts deterministic
//! containment in coNP.

use crate::ast::Unary;
use crate::sat::det::sat_deterministic;
use crate::sat::SatResult;

/// The outcome of a containment check.
#[derive(Debug, Clone, PartialEq)]
pub enum Containment {
    /// Every document satisfying the left formula satisfies the right one.
    Contained,
    /// A counterexample document: satisfies the left, not the right.
    NotContained(jsondata::Json),
    /// Undecided (solver budget / unsupported construct).
    Unknown(String),
}

impl Containment {
    /// Whether containment was established.
    pub fn is_contained(&self) -> bool {
        matches!(self, Containment::Contained)
    }
}

/// Checks `φ ⊑ ψ` (at the root) for deterministic JNL formulas.
///
/// Takes the formulas **by value**: the witness query `φ ∧ ¬ψ` is
/// assembled by moving both ASTs, so a caller that has (or can cheaply
/// produce) owned formulas pays no deep copy — the analyzer's containment
/// sweeps pass freshly compiled filters straight in. Borrowing callers
/// clone at the call site, which is exactly the cost the old `&`-based
/// signature hid internally.
pub fn contained_in(phi: Unary, psi: Unary) -> Containment {
    let witness_query = Unary::and(vec![phi, Unary::not(psi)]);
    match sat_deterministic(&witness_query) {
        SatResult::Unsat => Containment::Contained,
        SatResult::Sat(w) => Containment::NotContained(w),
        SatResult::Unknown(r) => Containment::Unknown(r),
    }
}

/// Checks semantic equivalence (mutual containment). Borrows: both
/// directions need both formulas, so the copies are intrinsic here.
pub fn equivalent(phi: &Unary, psi: &Unary) -> Containment {
    match contained_in(phi.clone(), psi.clone()) {
        Containment::Contained => contained_in(psi.clone(), phi.clone()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Binary as B;
    use crate::ast::Unary as U;
    use jsondata::JsonTree;

    #[test]
    fn syntactic_strengthening_is_contained() {
        // [X_a ∘ X_b] ⊑ [X_a]
        let strong = U::exists(B::compose(vec![B::key("a"), B::key("b")]));
        let weak = U::exists(B::key("a"));
        assert_eq!(
            contained_in(strong.clone(), weak.clone()),
            Containment::Contained
        );
        // ... but not conversely; the counterexample must separate them.
        match contained_in(weak.clone(), strong.clone()) {
            Containment::NotContained(w) => {
                let t = JsonTree::build(&w);
                assert!(crate::eval::check_root(&t, &weak));
                assert!(!crate::eval::check_root(&t, &strong));
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
    }

    #[test]
    fn equality_refines_existence() {
        // EQ(X_k, 5) ⊑ [X_k]
        let eq = U::eq_doc(B::key("k"), jsondata::Json::Num(5));
        let ex = U::exists(B::key("k"));
        assert_eq!(contained_in(eq, ex), Containment::Contained);
    }

    #[test]
    fn equivalence_of_normal_forms() {
        // ¬(¬φ) ≡ φ and ∧-flattening are semantic no-ops.
        let phi = U::and(vec![
            U::exists(B::key("a")),
            U::or(vec![U::exists(B::key("b")), U::True]),
        ]);
        let simplified = U::exists(B::key("a")); // the Or is a tautology
        assert_eq!(equivalent(&phi, &simplified), Containment::Contained);
    }

    #[test]
    fn disjoint_formulas_are_incomparable() {
        let a = U::eq_doc(B::key("k"), jsondata::Json::Num(1));
        let b = U::eq_doc(B::key("k"), jsondata::Json::Num(2));
        assert!(matches!(
            contained_in(a.clone(), b.clone()),
            Containment::NotContained(_)
        ));
        assert!(matches!(contained_in(b, a), Containment::NotContained(_)));
    }
}
