//! Determinism and compaction suites for the parallel query paths.
//!
//! Every parallel scan in `mongofind` must return **byte-identical**
//! results for every thread count — the 1-thread pool runs the chunks
//! inline in order and is therefore the semantic oracle (`jpar`'s
//! documented contract). The sweeps here cross thread counts {1, 2, 8}
//! with the three segment layouts the tree column can be in: one big
//! parse (a single array segment), many single-document insert segments,
//! and the post-`compact()` merge of the latter.
//!
//! `Collection::compact` itself is pinned by an equivalence property:
//! documents, symbols and every query answer must be unchanged by
//! compaction, on a hand corpus and on seeded generated documents.

use jpar::Pool;
use jsondata::{gen, parse, serialize::to_string, Json};
use mongofind::{Collection, Filter, Projection};

/// Filters crossing the exact-JNL fragment boundary, nested paths,
/// numeric segments, and every operator class.
fn filter_corpus() -> Vec<Filter> {
    [
        r#"{"name.first": {"$eq": "Sue"}}"#,
        r#"{"name.last": {"$in": ["Doe", "Kim"]}}"#,
        r#"{"name.last": {"$exists": "false"}}"#,
        r#"{"age": {"$gte": 30, "$lt": 60}}"#,
        r#"{"age": {"$ne": 44}}"#,
        r#"{"hobbies": {"$size": 2}}"#,
        r#"{"hobbies.0": "chess"}"#,
        r#"{"hobbies": {"$type": "array"}}"#,
        r#"{"$or": [{"age": 18}, {"name.first": "Ivy"}]}"#,
        r#"{"$not": {"age": {"$lt": 70}}}"#,
        r#"{"nope.deep": 1}"#,
    ]
    .iter()
    .map(|src| Filter::parse_str(src).expect("corpus filter parses"))
    .collect()
}

/// One big parse: a single array segment of `n` records.
fn big_parse(n: usize) -> Collection {
    Collection::parse_str(&to_string(&gen::person_records(n, 42))).unwrap()
}

/// `n` single-document insert segments (the fragmented layout).
fn fragmented(n: usize) -> Collection {
    let Json::Array(docs) = gen::person_records(n, 42) else {
        panic!("person_records returns an array");
    };
    let mut coll = Collection::parse_str("[]").unwrap();
    for d in &docs {
        coll.insert_str(&to_string(d)).unwrap();
    }
    assert_eq!(coll.segments().len(), n + 1);
    coll
}

fn shapes(n: usize) -> Vec<(&'static str, Collection)> {
    let mut compacted = fragmented(n);
    compacted.compact();
    vec![
        ("one_big_parse", big_parse(n)),
        ("fragmented_inserts", fragmented(n)),
        ("post_compact", compacted),
        ("empty", Collection::parse_str("[]").unwrap()),
        (
            "single_doc",
            Collection::parse_str(r#"{"age": 30, "name": {"first": "Sue"}}"#).unwrap(),
        ),
    ]
}

#[test]
fn find_paths_agree_across_thread_counts_and_layouts() {
    // 1000 docs: comfortably past the parallel thresholds (chunked scans
    // and multi-segment JNL fan-out both engage at 2 and 8 threads).
    let projection = Projection::parse_str(r#"{"name.first": 1, "age": 1}"#).unwrap();
    for (label, mut coll) in shapes(1000) {
        for f in filter_corpus() {
            coll.set_pool(Pool::serial());
            let refs = coll.find_refs(&f);
            let found = coll.find(&f);
            let projected = coll.find_project(&f, &projection);
            let via_jnl = coll.find_via_jnl(&f);
            let refs_jnl = coll.find_refs_via_jnl(&f);
            for threads in [1, 2, 8] {
                coll.set_pool(Pool::with_threads(threads));
                assert_eq!(coll.find_refs(&f), refs, "{label} x{threads} {f:?}");
                assert_eq!(coll.find(&f), found, "{label} x{threads} {f:?}");
                assert_eq!(
                    coll.find_project(&f, &projection),
                    projected,
                    "{label} x{threads} {f:?}"
                );
                assert_eq!(coll.find_via_jnl(&f), via_jnl, "{label} x{threads} {f:?}");
                assert_eq!(
                    coll.find_refs_via_jnl(&f),
                    refs_jnl,
                    "{label} x{threads} {f:?}"
                );
            }
        }
    }
}

#[test]
fn parallel_scan_respects_document_order() {
    // The spliced result must be in (segment, doc) order — equal to the
    // sequential scan's order, not merely the same set.
    let mut coll = big_parse(2000);
    coll.set_pool(Pool::with_threads(8));
    let all = Filter::parse_str(r#"{"age": {"$gte": 18}}"#).unwrap();
    let refs = coll.find_refs(&all);
    assert_eq!(refs.len(), coll.len());
    assert!(
        refs.windows(2)
            .all(|w| (w[0].seg, w[0].node) <= (w[1].seg, w[1].node)),
        "refs must come back in (segment, doc) order"
    );
    let ids: Vec<Json> = coll
        .find(&all)
        .iter()
        .map(|d| d.get("id").unwrap().clone())
        .collect();
    let expect: Vec<Json> = (0..coll.len() as u64).map(Json::Num).collect();
    assert_eq!(ids, expect, "documents must come back in insertion order");
}

#[test]
fn compact_preserves_documents_and_query_answers() {
    let projection = Projection::parse_str(r#"{"name.last": 1, "age": 1}"#).unwrap();
    let mut coll = fragmented(300);
    let docs_before = coll.docs().to_vec();
    let sym_age = coll.interner().lookup("age").unwrap();
    let answers_before: Vec<(Vec<Json>, Vec<Json>, Vec<Json>)> = filter_corpus()
        .iter()
        .map(|f| {
            (
                coll.find(f),
                coll.find_via_jnl(f),
                coll.find_project(f, &projection),
            )
        })
        .collect();

    coll.compact();
    assert_eq!(coll.segments().len(), 1, "compaction merges to one segment");
    assert_eq!(coll.docs(), &docs_before[..], "documents are unchanged");
    assert_eq!(
        coll.interner().lookup("age"),
        Some(sym_age),
        "the shared symbol assignment survives compaction"
    );
    for (f, before) in filter_corpus().iter().zip(answers_before) {
        assert_eq!(coll.find(f), before.0, "find after compact, {f:?}");
        assert_eq!(
            coll.find_via_jnl(f),
            before.1,
            "find_via_jnl after compact, {f:?}"
        );
        assert_eq!(
            coll.find_project(f, &projection),
            before.2,
            "find_project after compact, {f:?}"
        );
    }

    // Compacting twice (and compacting a single-segment collection) is a
    // no-op; inserting afterwards grows new segments that compact again.
    coll.compact();
    assert_eq!(coll.segments().len(), 1);
    coll.insert(&parse(r#"{"name": {"first": "Zed"}, "age": 33, "hobbies": []}"#).unwrap());
    assert_eq!(coll.segments().len(), 2);
    let f = Filter::parse_str(r#"{"name.first": "Zed"}"#).unwrap();
    assert_eq!(coll.find(&f).len(), 1);
    coll.compact();
    assert_eq!(coll.segments().len(), 1);
    assert_eq!(coll.find(&f).len(), 1);
    assert_eq!(coll.len(), 301);
}

#[test]
fn compact_equivalence_on_seeded_random_documents() {
    // Property sweep: insert generated documents of arbitrary shape
    // (scalars, deep nests, arrays at the root), compact, and compare
    // against both the uncompacted answers and a from-scratch rebuild.
    let mut coll = Collection::from_json(&parse(r#"[]"#).unwrap());
    for seed in 0..40u64 {
        coll.insert(&gen::random_json(&gen::GenConfig::sized(seed, 50)));
    }
    let docs_before = coll.docs().to_vec();
    let filters = filter_corpus();
    let before: Vec<Vec<Json>> = filters.iter().map(|f| coll.find(f)).collect();

    coll.compact();
    assert_eq!(coll.docs(), &docs_before[..]);
    let rebuilt = Collection::from_json(&Json::Array(docs_before));
    for (f, b) in filters.iter().zip(&before) {
        assert_eq!(&coll.find(f), b, "compacted vs uncompacted, {f:?}");
        assert_eq!(coll.find(f), rebuilt.find(f), "compacted vs rebuilt, {f:?}");
        assert_eq!(
            coll.find_via_jnl(f),
            rebuilt.find_via_jnl(f),
            "JNL compacted vs rebuilt, {f:?}"
        );
    }
}

#[test]
fn compact_handles_edge_layouts() {
    // Empty collection.
    let mut empty = Collection::parse_str("[]").unwrap();
    empty.compact();
    assert!(empty.is_empty());
    assert_eq!(empty.segments().len(), 1);

    // A single-document collection whose document IS an array value:
    // compaction must keep it one array-valued document, not explode it
    // into elements.
    let mut coll = Collection::parse_str("[]").unwrap();
    coll.insert(&parse("[1, 2, 3]").unwrap());
    coll.insert(&parse(r#"{"k": 1}"#).unwrap());
    assert_eq!(coll.len(), 2);
    coll.compact();
    assert_eq!(coll.len(), 2);
    assert_eq!(
        coll.docs(),
        &[parse("[1, 2, 3]").unwrap(), parse(r#"{"k": 1}"#).unwrap()]
    );

    // Non-array root (single-document semantics) plus inserts.
    let mut single = Collection::parse_str(r#"{"age": 5}"#).unwrap();
    single.insert_str(r#"{"age": 7}"#).unwrap();
    single.compact();
    assert_eq!(single.len(), 2);
    assert_eq!(
        single.docs(),
        &[
            parse(r#"{"age": 5}"#).unwrap(),
            parse(r#"{"age": 7}"#).unwrap()
        ]
    );
}
