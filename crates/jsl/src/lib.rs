//! # jsl — JSON Schema Logic
//!
//! The paper's second core contribution (§5): a modal logic over JSON trees
//! capturing the JSON Schema specification, with recursion capturing
//! `definitions`/`$ref`.
//!
//! * [`ast`] — formulas: node tests (`Arr`, `Obj`, `Str`, `Int`, `Unique`,
//!   `Pattern`, `Min`/`Max`/`MultOf`, `MinCh`/`MaxCh`, `∼(A)`) combined with
//!   existential/universal key and position modalities.
//! * [`eval`] — Proposition 6 evaluation, with the naive-pairwise vs
//!   canonical-labels `Unique` ablation.
//! * [`recursive`] — recursive JSL: well-formedness via the precedence
//!   graph, the paper's `unfold` semantics (exponential baseline), and the
//!   Proposition 9 PTIME bottom-up evaluation.
//! * [`translate`] — the Theorem 2 translations JSL ↔ JNL, including the
//!   paper's exponential construction and a polynomial CPS variant.
//! * [`sat`] — the tableau deciding satisfiability (Propositions 5, 7, 10),
//!   with verified witnesses and honest `Unknown` verdicts.
//! * [`reduce`] — the QBF (Prop 7) and circuit (Prop 9) hardness
//!   constructions as executable artifacts.
//! * [`streaming`] — one-pass, depth-bounded-memory validation over SAX
//!   events (the §6 streaming conjecture, implemented for the fragment
//!   without tree equality).
//!
//! ```
//! use jsondata::{parse, JsonTree};
//! use jsl::ast::{Jsl, NodeTest};
//! use jsl::eval::check_root;
//!
//! // "an object whose `name` is a string and whose `age` is at least 18"
//! let phi = Jsl::and(vec![
//!     Jsl::Test(NodeTest::Obj),
//!     Jsl::box_key("name", Jsl::Test(NodeTest::Str)),
//!     Jsl::diamond_key("age", Jsl::Test(NodeTest::Min(18))),
//! ]);
//! let doc = parse(r#"{"name": "Sue", "age": 28}"#).unwrap();
//! assert!(check_root(&JsonTree::build(&doc), &phi));
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod recursive;
pub mod reduce;
pub mod sat;
pub mod streaming;
pub mod translate;

pub use ast::{Jsl, NodeTest};
pub use eval::{check_root, evaluate, EvalOptions, UniqueStrategy};
pub use parser::{parse_jsl, JslParseError};
pub use recursive::{RecursiveJsl, WellFormednessError};
pub use sat::{sat_jsl, sat_recursive, JslSatResult, SatConfig};
pub use translate::{
    jnl_to_jsl_cps, jnl_to_jsl_paper, jnl_to_jsl_paths, jsl_to_jnl, TranslateError,
};
