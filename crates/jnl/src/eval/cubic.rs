//! The full-logic engine, including `EQ(α, β)` (Proposition 3, cubic case).
//!
//! Binary formulas are materialised as *relation rows*: for every node `n`,
//! a bitset of the nodes reachable by `α`. Because every primitive move
//! descends (to a child) or stays (tests, ε), relations are contained in
//! descendant-or-self, and `(α)*` closes in a single bottom-up pass over
//! pre-order ids. The worst case is the paper's `O(|J|³·|φ|)` (row unions
//! dominate); `EQ(α, β)` then intersects the canonical-class images of the
//! two rows per node.

use std::collections::HashSet;

use jsondata::NodeId;

use crate::ast::{Binary, Unary};
use crate::bitset::BitSet;
use crate::eval::{EvalContext, NodeSet};

/// Evaluates any JNL formula (the only engine that accepts `EQ(α, β)`
/// combined with non-determinism and recursion).
pub fn eval(tree: &jsondata::JsonTree, phi: &Unary) -> NodeSet {
    let mut ctx = EvalContext::new(tree);
    eval_unary(&mut ctx, phi)
}

/// [`eval`] with an explicit edge-matching strategy (benchmark ablations).
pub fn eval_with(tree: &jsondata::JsonTree, phi: &Unary, strategy: relex::EdgeStrategy) -> NodeSet {
    let mut ctx = EvalContext::with_strategy(tree, strategy);
    eval_unary(&mut ctx, phi)
}

fn eval_unary(ctx: &mut EvalContext<'_>, phi: &Unary) -> NodeSet {
    let n = ctx.tree.node_count();
    match phi {
        Unary::True => vec![true; n],
        Unary::Not(p) => {
            let mut s = eval_unary(ctx, p);
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Unary::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Unary::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        Unary::Exists(alpha) => {
            let rel = relation(ctx, alpha);
            rel.iter().map(|row| !row.is_empty()).collect()
        }
        Unary::EqDoc(alpha, doc) => {
            let rel = relation(ctx, alpha);
            let mut target = BitSet::new(n);
            if let Some(class) = ctx.class_of_doc(doc) {
                for i in 0..n {
                    if ctx.canon.class_of(NodeId::from_index(i)) == class {
                        target.insert(i);
                    }
                }
            }
            rel.iter().map(|row| row.intersects(&target)).collect()
        }
        Unary::EqPair(alpha, beta) => {
            let ra = relation(ctx, alpha);
            let rb = relation(ctx, beta);
            (0..n)
                .map(|i| {
                    // Compare canonical-class images of the two rows.
                    let (small, large) = if ra[i].count() <= rb[i].count() {
                        (&ra[i], &rb[i])
                    } else {
                        (&rb[i], &ra[i])
                    };
                    let classes: HashSet<u32> = small
                        .iter()
                        .map(|m| ctx.canon.class_of(NodeId::from_index(m)))
                        .collect();
                    large
                        .iter()
                        .any(|m| classes.contains(&ctx.canon.class_of(NodeId::from_index(m))))
                })
                .collect()
        }
    }
}

/// Materialises `JαK` as one bitset row per source node.
fn relation(ctx: &mut EvalContext<'_>, alpha: &Binary) -> Vec<BitSet> {
    let tree = ctx.tree;
    let n = tree.node_count();
    match alpha {
        Binary::Epsilon => identity(n),
        Binary::Test(phi) => {
            let s = eval_unary(ctx, phi);
            let mut rows = empty(n);
            for (i, &b) in s.iter().enumerate() {
                if b {
                    rows[i].insert(i);
                }
            }
            rows
        }
        Binary::Key(w) => {
            let mut rows = empty(n);
            for src in tree.node_ids() {
                if let Some(c) = tree.child_by_key(src, w) {
                    rows[src.index()].insert(c.index());
                }
            }
            rows
        }
        Binary::Index(i) => {
            let mut rows = empty(n);
            for src in tree.node_ids() {
                if let Some(c) = tree.child_by_signed_index(src, *i) {
                    rows[src.index()].insert(c.index());
                }
            }
            rows
        }
        Binary::KeyRegex(e) => {
            // One matcher fetch per relation; on the default tier each edge
            // test below is a single bit load.
            let matcher = ctx.matcher_for(e);
            let mut rows = empty(n);
            for src in tree.node_ids() {
                for (k, c) in tree.obj_entries(src) {
                    if matcher.matches_sym(k.index(), || tree.resolve(k)) {
                        rows[src.index()].insert(c.index());
                    }
                }
            }
            rows
        }
        Binary::Range(i, j) => {
            let mut rows = empty(n);
            for src in tree.node_ids() {
                let cs = tree.arr_children(src);
                for (pos, c) in cs.iter().enumerate() {
                    let pos = pos as u64;
                    if pos >= *i && j.is_none_or(|j| pos <= j) {
                        rows[src.index()].insert(c.index());
                    }
                }
            }
            rows
        }
        Binary::Compose(parts) => {
            let mut acc = identity(n);
            for p in parts {
                let step = relation(ctx, p);
                acc = compose_rows(&acc, &step);
            }
            acc
        }
        Binary::Star(inner) => {
            let step = relation(ctx, inner);
            // All moves are descendant-or-self, so closing bottom-up over
            // pre-order ids terminates in one pass:
            // R*[n] = {n} ∪ ⋃_{m ∈ step[n], m ≠ n} R*[m].
            let mut rows = empty(n);
            for i in (0..n).rev() {
                let members: Vec<usize> = step[i].iter().filter(|&m| m != i).collect();
                rows[i].insert(i);
                for m in members {
                    debug_assert!(m > i, "steps may only descend");
                    let (head, tail) = rows.split_at_mut(m);
                    head[i].union_with(&tail[0]);
                }
            }
            rows
        }
    }
}

fn identity(n: usize) -> Vec<BitSet> {
    let mut rows = empty(n);
    for (i, row) in rows.iter_mut().enumerate() {
        row.insert(i);
    }
    rows
}

fn empty(n: usize) -> Vec<BitSet> {
    vec![BitSet::new(n); n]
}

fn compose_rows(a: &[BitSet], b: &[BitSet]) -> Vec<BitSet> {
    let n = a.len();
    let mut out = empty(n);
    for i in 0..n {
        for m in a[i].iter() {
            out[i].union_with(&b[m]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};
    use jsondata::{parse, JsonTree};
    use relex::Regex;

    fn tree(src: &str) -> JsonTree {
        JsonTree::build(&parse(src).unwrap())
    }

    #[test]
    fn agrees_with_naive_on_full_logic() {
        let docs = [
            r#"{"a": {"x": [1, 2]}, "b": {"x": [1, 2]}, "c": {"x": [2, 1]}}"#,
            r#"[[1, [2]], [1, [2]], [[2], 1]]"#,
            r#"{"r": {"r": {"r": {"v": 9}}, "v": 9}}"#,
        ];
        let e = Regex::parse(".*").unwrap();
        let phis = vec![
            // EQ over recursive, nondeterministic paths.
            U::eq_pair(
                B::compose(vec![B::key("a"), B::star(B::key_regex(e.clone()))]),
                B::compose(vec![B::key("c"), B::star(B::key_regex(e.clone()))]),
            ),
            U::eq_pair(B::star(B::any_index()), B::star(B::any_index())),
            U::eq_pair(B::index(0), B::index(1)),
            U::not(U::eq_pair(B::index(0), B::index(2))),
            U::eq_pair(
                B::star(B::any_key()),
                B::compose(vec![B::any_key(), B::star(B::any_key())]),
            ),
            U::and(vec![
                U::exists(B::star(B::any_key())),
                U::eq_doc(B::star(B::any_key()), parse("9").unwrap()),
            ]),
        ];
        for src in docs {
            let t = tree(src);
            for phi in &phis {
                let fast = eval(&t, phi);
                let slow = crate::eval::naive::eval(&t, phi);
                assert_eq!(fast, slow, "doc {src}, formula {phi}");
            }
        }
    }

    #[test]
    fn eq_pair_with_star_finds_common_descendant_value() {
        // Do subtrees `l` and `r` share any equal descendant subtree?
        let t = tree(r#"{"l": {"p": [7, 8]}, "r": {"q": {"z": [7, 9]}}}"#);
        let desc = |k: &str| {
            B::compose(vec![
                B::key(k),
                B::star(B::compose(vec![
                    B::star(B::any_key()),
                    B::star(B::any_index()),
                ])),
            ])
        };
        let phi = U::eq_pair(desc("l"), desc("r"));
        assert!(eval(&t, &phi)[0], "both contain the value 7");
        let phi_miss = U::eq_pair(desc("l"), B::compose(vec![B::key("r"), B::key("q")]));
        assert!(!eval(&t, &phi_miss)[0]);
    }

    #[test]
    fn dispatcher_routes_to_cubic() {
        let t = tree(r#"{"a": 1, "b": 1}"#);
        let phi = U::eq_pair(B::any_key(), B::any_key());
        assert!(crate::eval::evaluate(&t, &phi)[0]);
    }
}
