//! Shared workloads and measurement helpers for the experiment harness and
//! the Criterion benches. Each experiment (E1–E12 in DESIGN.md) reproduces
//! one complexity claim of the paper; the workloads here define the
//! parameter sweeps both entry points use.

pub mod baseline;
pub mod jsonout;
pub mod memtrack;

use std::time::Instant;

use jnl::ast::{Binary, Unary};
use jsl::ast::{Jsl, NodeTest};
use jsondata::{gen, Json};

/// Times one closure in milliseconds (median of `reps` runs).
pub fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// exponent of a scaling curve. Linear algorithms fit ≈1, quadratic ≈2.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-9).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A balanced document of roughly `target` nodes (bounded height, wide
/// fan-out) whose leaves cycle through a small value pool so that subtree
/// equalities and `Unique` have work to do.
pub fn scaling_doc(target: usize, seed: u64) -> Json {
    // Compose chunks until the target is met: a single `random_json` call
    // may draw a leaf at the root, so the document is assembled as an array
    // of independently seeded random chunks.
    let mut chunks: Vec<Json> = Vec::new();
    let mut total = 1usize;
    let mut i = 0u64;
    while total < target {
        let cfg = gen::GenConfig {
            seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(i),
            target_nodes: (target / 8).clamp(32, 4096),
            max_depth: 10,
            max_width: 10,
            ..gen::GenConfig::default()
        };
        let chunk = gen::random_json(&cfg);
        total += chunk.node_count();
        chunks.push(chunk);
        i += 1;
    }
    Json::Array(chunks)
}

/// E1: a deterministic JNL formula exercising navigation, tests, and both
/// equality forms.
pub fn e1_formula() -> Unary {
    jnl::parse_unary(
        r#"([@"a" ; @"b"] | [@"items" ; @0] | eqdoc(@"name", "John") | eqpair(@"a", @"b"))
           & !eqdoc(@"id", 17)"#,
    )
    .expect("well-formed")
}

/// E1 (formula sweep): a chain of `k` existential conjuncts.
pub fn e1_formula_sized(k: usize) -> Unary {
    Unary::and(
        (0..k)
            .map(|i| {
                Unary::or(vec![
                    Unary::exists(Binary::compose(vec![
                        Binary::key(format!("k{}", i % 7)),
                        Binary::key("x"),
                    ])),
                    Unary::not(Unary::eq_doc(
                        Binary::key(format!("k{}", i % 5)),
                        Json::Num(i as u64),
                    )),
                ])
            })
            .collect(),
    )
}

/// E3: an equality-free recursive/non-deterministic formula (PDL engine).
pub fn e3_formula_eqfree() -> Unary {
    jnl::parse_unary(r#"eqdoc(((@/.*/)* ; (@[0:*])*)*, "yoga") | [(@/.*/)* ; @"needle"]"#)
        .expect("well-formed")
}

/// E3: the same navigation with a binary equality (cubic engine).
pub fn e3_formula_eqpair() -> Unary {
    Unary::eq_pair(
        Binary::star(Binary::compose(vec![
            Binary::star(Binary::any_key()),
            Binary::star(Binary::any_index()),
        ])),
        Binary::star(Binary::any_key()),
    )
}

/// E7: `Unique` over one wide array with a controlled duplicate pool.
pub fn e7_doc(n: usize, distinct: usize) -> Json {
    gen::array_with_duplicates(n, distinct, 0xE7)
}

/// E7: the JSL formula (`Arr ∧ Unique`).
pub fn e7_formula() -> Jsl {
    Jsl::and(vec![Jsl::Test(NodeTest::Arr), Jsl::Test(NodeTest::Unique)])
}

/// S3 (JNL side): an array of `objects` objects with `keys_each` keys
/// apiece, all `objects × keys_each` keys globally distinct — a
/// high-distinct-key tree where the lazy memo gets no cross-node reuse (it
/// degenerates to one NFA run per key, like the string baseline) while the
/// bitset tier replaces every NFA run with a DFA table walk.
pub fn s3_jnl_doc(objects: usize, keys_each: usize) -> Json {
    Json::Array(
        (0..objects)
            .map(|o| {
                Json::object(
                    (0..keys_each)
                        .map(|j| {
                            let i = o * keys_each + j;
                            (format!("k{i}"), Json::Num(i as u64))
                        })
                        .collect(),
                )
                .expect("generated keys are distinct")
            })
            .collect(),
    )
}

/// S3 (JNL side): a regex over the `s3_jnl_doc` key space — keys whose last
/// digit is 7, ≈10% of them, so existential scans rarely short-circuit —
/// plus the `[X_e]⊤` formula navigating it.
pub fn s3_jnl_workload() -> (relex::Regex, Unary) {
    let e = relex::Regex::parse("k[0-9]*7").expect("well-formed");
    let phi = Unary::exists(Binary::key_regex(e.clone()));
    (e, phi)
}

/// S3 (JSL side): an object with `n` distinct keys `u{i}` whose values are
/// `n` distinct string atoms `v{i}` — the high-distinct-symbol regime where
/// a lazy memo pays one NFA run per symbol and the bitset tier pays one
/// (much cheaper) DFA table walk.
pub fn s3_doc(n: usize) -> Json {
    Json::object(
        (0..n)
            .map(|i| (format!("u{i}"), Json::Str(format!("v{i}"))))
            .collect(),
    )
    .expect("generated keys are distinct")
}

/// S3 (JSL side): a `patternProperties`-shaped formula — keys with an even
/// last digit must hold string atoms matching `v[0-9]+`, and some key
/// ending in 7 must exist.
pub fn s3_jsl_formula() -> Jsl {
    let even_keys = relex::Regex::parse("u[0-9]*[02468]").expect("well-formed");
    let seven_keys = relex::Regex::parse("u[0-9]*7").expect("well-formed");
    let values = relex::Regex::parse("v[0-9]+").expect("well-formed");
    Jsl::and(vec![
        Jsl::BoxKey(even_keys, Box::new(Jsl::Test(NodeTest::Pattern(values)))),
        Jsl::DiamondKey(seven_keys, Box::new(Jsl::Test(NodeTest::Str))),
    ])
}

/// S4: the large-document parse-fusion workloads — `(label, text)` pairs
/// covering the mixed random scaling document (deep-ish, container-heavy)
/// and a wide record batch (the `mongofind`-collection shape: many small
/// objects over a shared key vocabulary).
pub fn s4_workloads() -> Vec<(&'static str, String)> {
    use jsondata::serialize::to_string;
    vec![
        (
            "scaling_mixed_64k_nodes",
            to_string(&scaling_doc(1 << 16, 5)),
        ),
        (
            "person_records_20k",
            to_string(&gen::person_records(20_000, 7)),
        ),
    ]
}

/// S5: the aggregation workload collection — 20k person records serialized,
/// loaded through the fused parser into one tree column.
pub fn s5_collection_text() -> String {
    jsondata::serialize::to_string(&gen::person_records(20_000, 7))
}

/// S5: the benchmark pipelines (label, pipeline JSON). Together they cover
/// every stage class: selection, unnest, grouping with five accumulators,
/// projection, sorting and pagination.
pub fn s5_pipelines() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "match_unwind_group_sort",
            r#"[
                {"$match": {"age": {"$gte": 30}}},
                {"$unwind": "$hobbies"},
                {"$group": {"_id": "$hobbies",
                            "n": {"$count": {}},
                            "total_age": {"$sum": "$age"},
                            "avg_age": {"$avg": "$age"},
                            "min_age": {"$min": "$age"},
                            "max_age": {"$max": "$age"}}},
                {"$sort": {"n": 0, "_id": 1}}
            ]"#,
        ),
        (
            // The leading $match is deliberately OUTSIDE the exact JNL
            // fragment ($in alongside an order comparison), so this
            // pipeline exercises the per-document `matches_at` path.
            "match_project_sort_paginate",
            r#"[
                {"$match": {"name.first": {"$in": ["Sue", "Omar", "Ivy"]}, "age": {"$lte": 89}}},
                {"$project": {"name.first": 1, "age": 1, "nh": "$hobbies"}},
                {"$sort": {"age": 0, "name.first": 1}},
                {"$skip": 100},
                {"$limit": 50}
            ]"#,
        ),
        (
            // The leading $match IS in the exact fragment: the executor
            // answers it with one whole-tree JNL evaluation per segment
            // (Filter::jnl_exact fast path) before the group stage.
            "jnl_match_group_compound_id",
            r#"[
                {"$match": {"name.last": {"$in": ["Doe", "Smith", "Lopez", "Chen", "Haddad", "Kim"]}}},
                {"$group": {"_id": {"f": "$name.first", "l": "$name.last"},
                            "n": {"$count": {}},
                            "ages": {"$push": "$age"},
                            "youngest": {"$min": "$age"}}},
                {"$sort": {"n": 0, "_id": 1}},
                {"$limit": 10}
            ]"#,
        ),
    ]
}

/// S6: the parallel-execution benchmark pipelines (label, pipeline JSON).
/// Both group — the stage whose chunk-merge plan the experiment gates —
/// and one leads with an exact-fragment `$match` (whole-tree JNL per
/// segment) while the other fans `$unwind` row expansion out first.
pub fn s6_pipelines() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "jnl_match_group",
            r#"[
                {"$match": {"name.last": {"$in": ["Doe", "Smith", "Lopez", "Chen", "Haddad", "Kim"]}}},
                {"$group": {"_id": {"f": "$name.first", "l": "$name.last"},
                            "n": {"$count": {}},
                            "ages": {"$push": "$age"},
                            "youngest": {"$min": "$age"}}},
                {"$sort": {"n": 0, "_id": 1}},
                {"$limit": 10}
            ]"#,
        ),
        (
            "unwind_group",
            r#"[
                {"$unwind": "$hobbies"},
                {"$group": {"_id": "$hobbies",
                            "n": {"$count": {}},
                            "total_age": {"$sum": "$age"},
                            "avg_age": {"$avg": "$age"},
                            "first_id": {"$first": "$id"},
                            "last_id": {"$last": "$id"}}},
                {"$sort": {"n": 0, "_id": 1}}
            ]"#,
        ),
    ]
}

/// S6: the find filter driving the chunk-parallel document scan (outside
/// the exact JNL fragment, so it runs `matches_at` per document).
pub const S6_FIND_FILTER: &str =
    r#"{"name.first": {"$in": ["Sue", "Omar", "Ivy"]}, "age": {"$gte": 30, "$lte": 79}}"#;

/// S6: the exact-fragment filter driving the per-segment JNL fan-out
/// (one whole-tree Proposition 1 evaluation per segment).
pub const S6_JNL_FILTER: &str = r#"{"name.last": {"$in": ["Doe", "Kim", "Chen"]}}"#;

/// S9: the paths the secondary-index experiment declares indexes on
/// (`name.last` is deliberately left unindexed so one workload exercises
/// the probe+residual split).
pub const S9_INDEX_PATHS: [&str; 3] = ["id", "name.first", "age"];

/// S9: the index-vs-scan workloads (label, filter JSON) over the 20k
/// person records. `eq_unique` is the selective-`$match` headline (one
/// matching document); the rest cover common `$eq`, pure ranges, `$in`,
/// all-probed compounds, and the probe+residual split.
pub fn s9_workloads() -> Vec<(&'static str, &'static str)> {
    vec![
        ("eq_unique", r#"{"id": 12345}"#),
        ("eq_common", r#"{"name.first": "Sue"}"#),
        ("range", r#"{"age": {"$gte": 40, "$lt": 50}}"#),
        (
            "in_set",
            r#"{"name.first": {"$in": ["Sue", "Omar", "Ivy"]}}"#,
        ),
        (
            "compound_probed",
            r#"{"name.first": "Sue", "age": {"$gte": 40, "$lt": 60}}"#,
        ),
        (
            "probe_residual",
            r#"{"age": {"$gte": 40, "$lt": 60}, "name.last": "Kim"}"#,
        ),
    ]
}

/// S10: the supplemental route workloads (label, filter JSON, expected
/// route name) that extend [`s9_workloads`] — all of which probe the
/// declared indexes — so the explain/execute agreement gate exercises
/// every branch of `Collection::route_of`. `name.last` is unindexed:
/// the exact-fragment equality takes the whole-segment JNL route and the
/// order comparison (outside the exact fragment) falls through to the
/// chunk-parallel scan.
pub fn s10_route_workloads() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut all: Vec<(&'static str, &'static str, &'static str)> = s9_workloads()
        .into_iter()
        .map(|(label, src)| (label, src, "index"))
        .collect();
    all.push(("jnl_eq_unindexed", r#"{"name.last": "Kim"}"#, "jnl"));
    all.push((
        "scan_order_unindexed",
        r#"{"name.last": {"$gt": "K"}}"#,
        "scan",
    ));
    all
}

/// E9: the even-depth recursive JSL expression of the paper's Example 2.
pub fn e9_even_depth() -> jsl::RecursiveJsl {
    jsl::RecursiveJsl {
        defs: vec![
            ("g1".into(), Jsl::box_any_key(Jsl::Var("g2".into()))),
            (
                "g2".into(),
                Jsl::and(vec![
                    Jsl::diamond_any_key(Jsl::True),
                    Jsl::box_any_key(Jsl::Var("g1".into())),
                ]),
            ),
        ],
        base: Jsl::Var("g1".into()),
    }
}

/// E9: a complete object tree of the given (even) height.
pub fn e9_doc(height: usize, branch: usize) -> Json {
    gen::balanced_tree(height, branch)
}

/// Formats a measurement table row.
pub fn row(cols: &[String]) -> String {
    cols.iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_fits_known_exponents() {
        let linear: Vec<(f64, f64)> = (1..8).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&linear) - 1.0).abs() < 0.01);
        let quad: Vec<(f64, f64)> = (1..8).map(|i| (i as f64, 0.5 * (i * i) as f64)).collect();
        assert!((loglog_slope(&quad) - 2.0).abs() < 0.01);
    }

    #[test]
    fn workloads_are_well_formed() {
        assert!(e1_formula().fragment().is_deterministic());
        assert!(!e3_formula_eqfree().fragment().eq_pair);
        assert!(e3_formula_eqpair().fragment().eq_pair);
        assert_eq!(e9_even_depth().well_formed(), Ok(()));
        // scaling_doc overshoots by at most one chunk.
        let d = scaling_doc(1000, 1);
        let n = d.node_count();
        assert!((1000..1000 + 4200).contains(&n), "{n} nodes");
    }
}
