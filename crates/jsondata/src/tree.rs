//! The JSON tree model of §3.1: an arena-backed, immutable tree whose nodes
//! are partitioned into objects, arrays, strings and numbers, with
//! key-labelled object edges and index-labelled array edges.
//!
//! Design notes:
//!
//! * Node ids are assigned in **pre-order** during construction, so for every
//!   node `n` and every descendant `d` of `n`, `n.index() < d.index()`.
//!   Iterating ids in *descending* order therefore visits children before
//!   parents — the bottom-up evaluation order used throughout the logic
//!   engines — without materialising an explicit post-order.
//! * Object children are stored **sorted by key**, giving `O(log k)` key
//!   lookup. JSON objects are unordered (§3.2 difference 1), so this loses
//!   no information.
//! * Construction and reconstruction are iterative: document depth never
//!   translates into call-stack depth, so million-node chain documents used
//!   by the scaling benchmarks are safe.

use std::fmt;

use crate::value::Json;

/// Identifier of a node within one [`JsonTree`]; indexes the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw arena index (test/bench helper).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

/// The four node types partitioning the tree domain (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An object node (member of the `Obj` partition).
    Obj,
    /// An array node (member of the `Arr` partition).
    Arr,
    /// A string leaf (member of the `Str` partition).
    Str,
    /// A number leaf (member of the `Int` partition).
    Int,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Obj => "object",
            NodeKind::Arr => "array",
            NodeKind::Str => "string",
            NodeKind::Int => "number",
        };
        f.write_str(s)
    }
}

/// The label of an edge from a parent to one of its children: a key (for
/// object nodes, relation `O`) or a position (for array nodes, relation `A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeLabel<'a> {
    /// Object edge labelled with a key `w ∈ Σ*`.
    Key(&'a str),
    /// Array edge labelled with a position `i ∈ ℕ`.
    Index(usize),
}

impl fmt::Display for EdgeLabel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeLabel::Key(k) => write!(f, "{:?}", k),
            EdgeLabel::Index(i) => write!(f, "{}", i),
        }
    }
}

enum Body {
    /// Children sorted by key; pairwise-distinct keys by construction.
    Obj(Vec<(String, NodeId)>),
    Arr(Vec<NodeId>),
    Str(String),
    Int(u64),
}

struct Node {
    body: Body,
    parent: Option<NodeId>,
    /// Position of this node in its parent's child vector; 0 for the root.
    slot: u32,
}

/// An immutable JSON tree `J = (D, Obj, Arr, Str, Int, A, O, val)`.
pub struct JsonTree {
    nodes: Vec<Node>,
    /// `height[i]`: height of the subtree rooted at node `i` (leaves = 0).
    height: Vec<u32>,
    /// `size[i]`: number of nodes in the subtree rooted at node `i`.
    size: Vec<u32>,
}

impl JsonTree {
    /// Builds the tree representation of a JSON document.
    pub fn build(doc: &Json) -> JsonTree {
        let mut nodes: Vec<Node> = Vec::with_capacity(doc.node_count());
        // Iterative pre-order construction; the work stack holds
        // (value, parent, slot).
        let mut stack: Vec<(&Json, Option<NodeId>, u32)> = vec![(doc, None, 0)];
        while let Some((value, parent, slot)) = stack.pop() {
            let id = NodeId(nodes.len() as u32);
            if let Some(p) = parent {
                // Patch the reserved child slot in the parent.
                match &mut nodes[p.index()].body {
                    Body::Obj(cs) => cs[slot as usize].1 = id,
                    Body::Arr(cs) => cs[slot as usize] = id,
                    _ => unreachable!("leaf nodes have no children"),
                }
            }
            let body = match value {
                Json::Num(n) => Body::Int(*n),
                Json::Str(s) => Body::Str(s.clone()),
                Json::Array(items) => Body::Arr(vec![NodeId(u32::MAX); items.len()]),
                Json::Object(o) => {
                    let mut cs: Vec<(String, NodeId)> =
                        o.iter().map(|(k, _)| (k.to_owned(), NodeId(u32::MAX))).collect();
                    cs.sort_by(|a, b| a.0.cmp(&b.0));
                    Body::Obj(cs)
                }
            };
            nodes.push(Node { body, parent, slot });
            // Queue children. For pre-order ids we push in reverse so the
            // first child is popped (and hence numbered) first.
            match value {
                Json::Array(items) => {
                    for (i, item) in items.iter().enumerate().rev() {
                        stack.push((item, Some(id), i as u32));
                    }
                }
                Json::Object(o) => {
                    // Children were sorted by key above; find each key's slot.
                    let sorted_keys: Vec<&str> = match &nodes[id.index()].body {
                        Body::Obj(cs) => cs.iter().map(|(k, _)| k.as_str()).collect(),
                        _ => unreachable!(),
                    };
                    let mut entries: Vec<(&str, &Json)> = o.iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(b.0));
                    for (i, (k, v)) in entries.iter().enumerate().rev() {
                        debug_assert_eq!(sorted_keys[i], *k);
                        stack.push((v, Some(id), i as u32));
                    }
                }
                _ => {}
            }
        }
        let (height, size) = Self::measure(&nodes);
        JsonTree { nodes, height, size }
    }

    fn measure(nodes: &[Node]) -> (Vec<u32>, Vec<u32>) {
        let mut height = vec![0u32; nodes.len()];
        let mut size = vec![1u32; nodes.len()];
        // Descending id order visits children before parents (pre-order ids).
        for i in (0..nodes.len()).rev() {
            let (h, s) = match &nodes[i].body {
                Body::Obj(cs) => cs.iter().fold((0, 1), |(h, s), (_, c)| {
                    (h.max(height[c.index()] + 1), s + size[c.index()])
                }),
                Body::Arr(cs) => cs.iter().fold((0, 1), |(h, s), c| {
                    (h.max(height[c.index()] + 1), s + size[c.index()])
                }),
                _ => (0, 1),
            };
            height[i] = h;
            size[i] = s;
        }
        (height, size)
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, `|J|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all node ids in pre-order (ascending, parents first).
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates node ids bottom-up (children before parents).
    pub fn bottom_up(&self) -> impl Iterator<Item = NodeId> {
        self.node_ids().rev()
    }

    /// The kind (partition) of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        match self.nodes[n.index()].body {
            Body::Obj(_) => NodeKind::Obj,
            Body::Arr(_) => NodeKind::Arr,
            Body::Str(_) => NodeKind::Str,
            Body::Int(_) => NodeKind::Int,
        }
    }

    /// Height of the subtree rooted at `n` (leaves have height 0).
    pub fn height_of(&self, n: NodeId) -> usize {
        self.height[n.index()] as usize
    }

    /// Number of nodes in the subtree rooted at `n`.
    pub fn subtree_size(&self, n: NodeId) -> usize {
        self.size[n.index()] as usize
    }

    /// Height of the whole tree.
    pub fn height(&self) -> usize {
        self.height_of(self.root())
    }

    /// Object children `(key, child)` sorted by key; empty for non-objects.
    pub fn obj_children(&self, n: NodeId) -> &[(String, NodeId)] {
        match &self.nodes[n.index()].body {
            Body::Obj(cs) => cs,
            _ => &[],
        }
    }

    /// Array children in positional order; empty for non-arrays.
    pub fn arr_children(&self, n: NodeId) -> &[NodeId] {
        match &self.nodes[n.index()].body {
            Body::Arr(cs) => cs,
            _ => &[],
        }
    }

    /// Number of children of `n` (0 for leaves).
    pub fn child_count(&self, n: NodeId) -> usize {
        match &self.nodes[n.index()].body {
            Body::Obj(cs) => cs.len(),
            Body::Arr(cs) => cs.len(),
            _ => 0,
        }
    }

    /// The `O` relation restricted to `n`: the child under key `key`.
    /// Determinism (§3.1 condition 2) makes this at most one node.
    pub fn child_by_key(&self, n: NodeId, key: &str) -> Option<NodeId> {
        match &self.nodes[n.index()].body {
            Body::Obj(cs) => cs
                .binary_search_by(|(k, _)| k.as_str().cmp(key))
                .ok()
                .map(|i| cs[i].1),
            _ => None,
        }
    }

    /// The `A` relation restricted to `n`: the child at position `i`.
    pub fn child_by_index(&self, n: NodeId, i: usize) -> Option<NodeId> {
        match &self.nodes[n.index()].body {
            Body::Arr(cs) => cs.get(i).copied(),
            _ => None,
        }
    }

    /// The child at a possibly negative position: `-1` is the last element,
    /// `-j` the j-th from the end (the paper's dual array operator).
    pub fn child_by_signed_index(&self, n: NodeId, i: i64) -> Option<NodeId> {
        match &self.nodes[n.index()].body {
            Body::Arr(cs) => {
                let idx = if i >= 0 {
                    i as usize
                } else {
                    cs.len().checked_sub(i.unsigned_abs() as usize)?
                };
                cs.get(idx).copied()
            }
            _ => None,
        }
    }

    /// Iterates over all children with their edge labels.
    pub fn children(&self, n: NodeId) -> ChildIter<'_> {
        ChildIter { body: &self.nodes[n.index()].body, pos: 0 }
    }

    /// The parent of `n`, or `None` at the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// The label of the edge from the parent of `n` to `n`.
    pub fn edge_from_parent(&self, n: NodeId) -> Option<EdgeLabel<'_>> {
        let node = &self.nodes[n.index()];
        let p = node.parent?;
        Some(match &self.nodes[p.index()].body {
            Body::Obj(cs) => EdgeLabel::Key(&cs[node.slot as usize].0),
            Body::Arr(_) => EdgeLabel::Index(node.slot as usize),
            _ => unreachable!("leaves have no children"),
        })
    }

    /// The string value of a `Str` node.
    pub fn str_value(&self, n: NodeId) -> Option<&str> {
        match &self.nodes[n.index()].body {
            Body::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of an `Int` node.
    pub fn num_value(&self, n: NodeId) -> Option<u64> {
        match &self.nodes[n.index()].body {
            Body::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The function `json(n)` of §3.1: the subtree rooted at `n`, which is
    /// again a valid JSON value (compositionality).
    pub fn json_at(&self, n: NodeId) -> Json {
        // Bottom-up reconstruction over the contiguous id range of the
        // subtree. Pre-order ids make every subtree a contiguous block
        // [n, n + size(n)).
        let lo = n.index();
        let hi = lo + self.subtree_size(n);
        let mut built: Vec<Option<Json>> = vec![None; hi - lo];
        for i in (lo..hi).rev() {
            let j = match &self.nodes[i].body {
                Body::Int(v) => Json::Num(*v),
                Body::Str(s) => Json::Str(s.clone()),
                Body::Arr(cs) => Json::Array(
                    cs.iter()
                        .map(|c| built[c.index() - lo].take().expect("child built"))
                        .collect(),
                ),
                Body::Obj(cs) => Json::object(
                    cs.iter()
                        .map(|(k, c)| (k.clone(), built[c.index() - lo].take().expect("child built")))
                        .collect(),
                )
                .expect("tree keys are distinct"),
            };
            built[i - lo] = Some(j);
        }
        built[0].take().expect("root of subtree built")
    }

    /// The full document this tree represents.
    pub fn to_json(&self) -> Json {
        self.json_at(self.root())
    }

    /// The word in ℕ* addressing `n` in the tree domain (root = ε).
    /// Positions follow the §3.1 convention: a node's children are numbered
    /// `0..k` in the stored order (key-sorted for objects, positional for
    /// arrays).
    pub fn domain_word(&self, n: NodeId) -> Vec<usize> {
        let mut w = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            w.push(self.nodes[cur.index()].slot as usize);
            cur = p;
        }
        w.reverse();
        w
    }

    /// Human-readable path of `n` (e.g. `$."name"."first"` or `$."hobbies".1`).
    pub fn path_string(&self, n: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = n;
        while let Some(label) = self.edge_from_parent(cur) {
            parts.push(label.to_string());
            cur = self.parent(cur).expect("edge implies parent");
        }
        parts.reverse();
        let mut out = String::from("$");
        for p in parts {
            out.push('.');
            out.push_str(&p);
        }
        out
    }
}

impl fmt::Debug for JsonTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JsonTree({} nodes, height {})", self.node_count(), self.height())
    }
}

/// Iterator over `(EdgeLabel, NodeId)` children of one node.
pub struct ChildIter<'a> {
    body: &'a Body,
    pos: usize,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = (EdgeLabel<'a>, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let out = match self.body {
            Body::Obj(cs) => {
                let (k, c) = cs.get(self.pos)?;
                (EdgeLabel::Key(k.as_str()), *c)
            }
            Body::Arr(cs) => {
                let c = cs.get(self.pos)?;
                (EdgeLabel::Index(self.pos), *c)
            }
            _ => return None,
        };
        self.pos += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = match self.body {
            Body::Obj(cs) => cs.len(),
            Body::Arr(cs) => cs.len(),
            _ => 0,
        };
        let rem = len.saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn figure1() -> Json {
        parse(
            r#"{
                "name": {"first": "John", "last": "Doe"},
                "age": 32,
                "hobbies": ["fishing", "yoga"]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn build_figure1() {
        let t = JsonTree::build(&figure1());
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.height(), 2);
        let root = t.root();
        assert_eq!(t.kind(root), NodeKind::Obj);
        assert_eq!(t.child_count(root), 3);

        let name = t.child_by_key(root, "name").unwrap();
        assert_eq!(t.kind(name), NodeKind::Obj);
        let first = t.child_by_key(name, "first").unwrap();
        assert_eq!(t.str_value(first), Some("John"));

        let age = t.child_by_key(root, "age").unwrap();
        assert_eq!(t.num_value(age), Some(32));

        let hobbies = t.child_by_key(root, "hobbies").unwrap();
        assert_eq!(t.kind(hobbies), NodeKind::Arr);
        let yoga = t.child_by_index(hobbies, 1).unwrap();
        assert_eq!(t.str_value(yoga), Some("yoga"));
        assert_eq!(t.child_by_index(hobbies, 2), None);
    }

    #[test]
    fn preorder_ids_nest() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            for (_, c) in t.children(n) {
                assert!(c > n, "child id must exceed parent id");
                assert_eq!(t.parent(c), Some(n));
            }
        }
    }

    #[test]
    fn subtree_is_contiguous_block() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            let lo = n.index();
            let hi = lo + t.subtree_size(n);
            // All and only ids in [lo, hi) are in the subtree of n.
            for m in t.node_ids() {
                let mut anc = Some(m);
                let mut inside = false;
                while let Some(a) = anc {
                    if a == n {
                        inside = true;
                        break;
                    }
                    anc = t.parent(a);
                }
                assert_eq!(inside, (lo..hi).contains(&m.index()));
            }
        }
    }

    #[test]
    fn json_at_reconstructs_each_subtree() {
        // §3.1: the five subtrees of the running example are the five JSON
        // values of the document (here: Figure 1 variant with 8 values).
        let doc = figure1();
        let t = JsonTree::build(&doc);
        assert_eq!(t.to_json(), doc);
        let name = t.child_by_key(t.root(), "name").unwrap();
        assert_eq!(t.json_at(name), parse(r#"{"first":"John","last":"Doe"}"#).unwrap());
        let hobbies = t.child_by_key(t.root(), "hobbies").unwrap();
        assert_eq!(t.json_at(hobbies), parse(r#"["fishing","yoga"]"#).unwrap());
    }

    #[test]
    fn negative_indexing() {
        let t = JsonTree::build(&parse(r#"[10, 20, 30]"#).unwrap());
        let r = t.root();
        assert_eq!(t.num_value(t.child_by_signed_index(r, -1).unwrap()), Some(30));
        assert_eq!(t.num_value(t.child_by_signed_index(r, -3).unwrap()), Some(10));
        assert_eq!(t.child_by_signed_index(r, -4), None);
        assert_eq!(t.num_value(t.child_by_signed_index(r, 1).unwrap()), Some(20));
    }

    #[test]
    fn edge_labels_and_paths() {
        let t = JsonTree::build(&figure1());
        let hobbies = t.child_by_key(t.root(), "hobbies").unwrap();
        let yoga = t.child_by_index(hobbies, 1).unwrap();
        assert_eq!(t.edge_from_parent(yoga), Some(EdgeLabel::Index(1)));
        assert_eq!(t.edge_from_parent(hobbies), Some(EdgeLabel::Key("hobbies")));
        assert_eq!(t.edge_from_parent(t.root()), None);
        assert_eq!(t.path_string(yoga), "$.\"hobbies\".1");
    }

    #[test]
    fn domain_words_are_prefix_closed() {
        let t = JsonTree::build(&figure1());
        let words: Vec<Vec<usize>> = t.node_ids().map(|n| t.domain_word(n)).collect();
        for w in &words {
            let mut prefix = w.clone();
            while prefix.pop().is_some() {
                assert!(words.contains(&prefix), "domain must be prefix-closed");
            }
        }
        // Sibling completeness: if n·i ∈ D then n·j ∈ D for all j < i.
        for w in &words {
            if let Some((&last, head)) = w.split_last() {
                for j in 0..last {
                    let mut sib = head.to_vec();
                    sib.push(j);
                    assert!(words.contains(&sib), "domain must contain smaller siblings");
                }
            }
        }
    }

    #[test]
    fn leaves_have_no_children() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            match t.kind(n) {
                NodeKind::Str | NodeKind::Int => {
                    assert_eq!(t.child_count(n), 0);
                    assert!(t.children(n).next().is_none());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-deep chain exercised iteratively end to end. Run on a big
        // stack only because the compiler-generated drop glue for nested
        // enums is recursive; all library operations are iterative.
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let mut j = Json::Num(0);
                for _ in 0..100_000 {
                    j = Json::object(vec![("c".into(), j)]).unwrap();
                }
                let t = JsonTree::build(&j);
                assert_eq!(t.node_count(), 100_001);
                assert_eq!(t.height(), 100_000);
                assert_eq!(t.to_json(), j);
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn empty_containers() {
        let t = JsonTree::build(&parse(r#"{"e":{},"a":[]}"#).unwrap());
        let e = t.child_by_key(t.root(), "e").unwrap();
        let a = t.child_by_key(t.root(), "a").unwrap();
        assert_eq!(t.kind(e), NodeKind::Obj);
        assert_eq!(t.child_count(e), 0);
        assert_eq!(t.kind(a), NodeKind::Arr);
        assert_eq!(t.height_of(e), 0);
        assert_eq!(t.json_at(a), Json::array([]));
    }

    #[test]
    fn child_iter_size_hint() {
        let t = JsonTree::build(&parse(r#"[1,2,3,4]"#).unwrap());
        let it = t.children(t.root());
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(t.children(t.root()).count(), 4);
    }
}
