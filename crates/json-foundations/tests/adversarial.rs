//! Hostile-input suite: every entry of [`jsondata::gen::hostile_corpus`]
//! must flow through parse → find → aggregate with a **success or a
//! structured error, never a panic**, at every thread count — and the
//! same queries under a governed context must fail *closed* (structured
//! `QueryError`) when the budget or deadline cannot be met.

use std::time::Duration;

use jguard::{QueryCtx, QueryError};
use jpar::Pool;
use json_foundations::agg::Pipeline;
use json_foundations::mongo::{Collection, Filter};
use jsondata::{gen, ParseLimits};

const THREADS: [usize; 3] = [1, 2, 8];

/// Labels of corpus entries the §2 data model *requires* the parser to
/// reject (duplicate keys, unbalanced/trailing text). Everything else is
/// nasty but legal under default limits — except depth, where the default
/// 512 cap rejects the deep entries; both outcomes are structured.
const MUST_REJECT: [&str; 3] = ["dup_flood_10k", "unclosed_deep", "trailing_garbage"];

fn queries() -> (Filter, Pipeline) {
    let f = Filter::parse_str(r#"{"a": {"$gte": 0}}"#).unwrap();
    let p = Pipeline::parse_str(
        r#"[{"$match": {"a": {"$gte": 0}}},
            {"$group": {"_id": "$a", "n": {"$count": {}}, "all": {"$push": "$a"}}},
            {"$sort": {"n": 0}}, {"$limit": 5}]"#,
    )
    .unwrap();
    (f, p)
}

#[test]
fn hostile_corpus_never_panics_across_thread_counts() {
    let (filter, pipe) = queries();
    for (label, text) in gen::hostile_corpus(7) {
        let parsed = Collection::parse_str(&text);
        if MUST_REJECT.contains(&label) {
            assert!(parsed.is_err(), "{label}: the parser must reject this");
        }
        if parsed.is_err() {
            continue;
        }
        for threads in THREADS {
            let mut coll = Collection::parse_str(&text).unwrap();
            coll.set_pool(Pool::with_threads(threads));
            // Plain and governed paths; the governed context is generous
            // enough that the hostile shape, not the guard, is on trial.
            let found = coll.find(&filter);
            let ctx = QueryCtx::new().with_timeout(Duration::from_secs(60));
            let governed = coll
                .find_with_ctx(&filter, &ctx)
                .unwrap_or_else(|e| panic!("{label} x{threads}: {e}"));
            assert_eq!(found, governed, "{label} x{threads}");
            let agg = json_foundations::agg::aggregate(&coll, &pipe);
            let agg_governed = json_foundations::agg::aggregate_with_ctx(&coll, &pipe, &ctx)
                .unwrap_or_else(|e| panic!("{label} x{threads}: {e}"));
            assert_eq!(agg, agg_governed, "{label} x{threads}");
        }
    }
}

#[test]
fn hostile_corpus_under_ingestion_limits_fails_closed() {
    let limits = ParseLimits {
        max_depth: 256,
        max_bytes: 1 << 20,
    };
    let build = || {
        let mut coll = Collection::parse_str(r#"[{"a": 1}]"#).unwrap();
        let mut rejected = 0;
        for (label, text) in gen::hostile_corpus(11) {
            match coll.insert_str_with_limits(&text, limits) {
                Ok(()) => {}
                Err(QueryError::ParseLimit(_)) => rejected += 1,
                Err(e) => panic!("{label}: non-parse error at ingestion: {e}"),
            }
        }
        assert!(rejected >= 4, "the caps must reject the worst entries");
        coll
    };
    // Whatever made it through is queryable on every thread count.
    let (filter, pipe) = queries();
    let oracle = {
        let mut c = build();
        c.set_pool(Pool::serial());
        (c.find(&filter), json_foundations::agg::aggregate(&c, &pipe))
    };
    for threads in THREADS {
        let mut c = build();
        c.set_pool(Pool::with_threads(threads));
        assert_eq!(c.find(&filter), oracle.0, "x{threads}");
        assert_eq!(
            json_foundations::agg::aggregate(&c, &pipe),
            oracle.1,
            "x{threads}"
        );
    }
}

#[test]
fn starved_budgets_fail_closed_on_hostile_survivors() {
    let (filter, pipe) = queries();
    for (label, text) in gen::hostile_corpus(13) {
        let Ok(mut coll) = Collection::parse_str(&text) else {
            continue;
        };
        for threads in THREADS {
            coll.set_pool(Pool::with_threads(threads));
            // A zero byte budget: any query materialising output must
            // return BudgetExceeded (or legitimately produce nothing).
            let starved = QueryCtx::new().with_byte_budget(0);
            if let Err(e) = coll.find_with_ctx(&filter, &starved) {
                assert!(
                    matches!(e, QueryError::BudgetExceeded { .. }),
                    "{label} x{threads}: {e}"
                );
            }
            if let Err(e) = json_foundations::agg::aggregate_with_ctx(&coll, &pipe, &starved) {
                assert!(
                    matches!(e, QueryError::BudgetExceeded { .. }),
                    "{label} x{threads}: {e}"
                );
            }
            // An already-cancelled context stops before real work.
            let cancelled = QueryCtx::new();
            cancelled.cancel();
            assert!(matches!(
                coll.find_with_ctx(&filter, &cancelled),
                Err(QueryError::Cancelled)
            ));
            // An expired deadline is indistinguishable from cancellation
            // in shape: a structured Deadline, not a hang or a panic.
            let expired = QueryCtx::new().with_timeout(Duration::ZERO);
            assert!(matches!(
                json_foundations::agg::aggregate_with_ctx(&coll, &pipe, &expired),
                Err(QueryError::Deadline)
            ));
        }
    }
}
