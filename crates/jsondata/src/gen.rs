//! Seeded document generators for tests and the benchmark harness.
//!
//! All generators are deterministic in their seed, so experiments in
//! EXPERIMENTS.md are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::value::Json;

/// Configuration for [`random_json`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of nodes to generate (the generator stops opening
    /// new containers once the budget is spent, so actual size is close).
    pub target_nodes: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum children per container.
    pub max_width: usize,
    /// Pool of keys to draw from (small pools create many shared keys, which
    /// the navigation logics need to find anything).
    pub key_pool: Vec<String>,
    /// Pool of leaf strings.
    pub string_pool: Vec<String>,
    /// Upper bound (exclusive) for numeric leaves.
    pub num_bound: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xB0C4_D1E5,
            target_nodes: 256,
            max_depth: 8,
            max_width: 8,
            key_pool: [
                "a", "b", "c", "d", "name", "age", "items", "id", "tags", "value",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            string_pool: ["x", "y", "John", "Sue", "fishing", "yoga", ""]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            num_bound: 100,
        }
    }
}

impl GenConfig {
    /// A config with the given seed and approximate size.
    pub fn sized(seed: u64, target_nodes: usize) -> GenConfig {
        GenConfig {
            seed,
            target_nodes,
            ..GenConfig::default()
        }
    }
}

/// Generates a random document according to `cfg`.
pub fn random_json(cfg: &GenConfig) -> Json {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut budget = cfg.target_nodes.max(1);
    gen_value(&mut rng, cfg, 0, &mut budget)
}

fn gen_value(rng: &mut StdRng, cfg: &GenConfig, depth: usize, budget: &mut usize) -> Json {
    *budget = budget.saturating_sub(1);
    let leaf_only = depth >= cfg.max_depth || *budget == 0;
    let choice = if leaf_only {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..4)
    };
    match choice {
        0 => Json::Num(rng.gen_range(0..cfg.num_bound)),
        1 => {
            let i = rng.gen_range(0..cfg.string_pool.len());
            Json::Str(cfg.string_pool[i].clone())
        }
        2 => {
            let width = rng.gen_range(0..=cfg.max_width.min(*budget));
            Json::Array(
                (0..width)
                    .map(|_| gen_value(rng, cfg, depth + 1, budget))
                    .collect(),
            )
        }
        _ => {
            let width = rng.gen_range(0..=cfg.max_width.min(*budget).min(cfg.key_pool.len()));
            // Sample distinct keys from the pool.
            let mut keys: Vec<&String> = cfg.key_pool.iter().collect();
            for i in (1..keys.len()).rev() {
                let j = rng.gen_range(0..=i);
                keys.swap(i, j);
            }
            let pairs = keys
                .into_iter()
                .take(width)
                .map(|k| (k.clone(), gen_value(rng, cfg, depth + 1, budget)))
                .collect();
            Json::object(pairs).expect("sampled keys are distinct")
        }
    }
}

/// A chain `{"key": {"key": ... v}}` of the given depth — the worst case for
/// height-sensitive algorithms.
pub fn deep_chain(depth: usize, key: &str, leaf: Json) -> Json {
    let mut j = leaf;
    for _ in 0..depth {
        j = Json::object(vec![(key.to_owned(), j)]).expect("single key");
    }
    j
}

/// An object with `n` distinct keys `k0..k{n-1}` mapping to their index.
pub fn wide_object(n: usize) -> Json {
    Json::object(
        (0..n)
            .map(|i| (format!("k{i}"), Json::Num(i as u64)))
            .collect(),
    )
    .expect("generated keys are distinct")
}

/// An array of `n` numbers `0..n`.
pub fn wide_array(n: usize) -> Json {
    Json::Array((0..n).map(|i| Json::Num(i as u64)).collect())
}

/// An array of `n` elements drawn from `distinct` different values —
/// controls the duplicate density `Unique` has to detect.
pub fn array_with_duplicates(n: usize, distinct: usize, seed: u64) -> Json {
    let mut rng = StdRng::seed_from_u64(seed);
    let distinct = distinct.max(1);
    Json::Array(
        (0..n)
            .map(|_| {
                let v = rng.gen_range(0..distinct as u64);
                Json::object(vec![("v".to_owned(), Json::Num(v))]).expect("single key")
            })
            .collect(),
    )
}

/// A balanced tree where every internal node is an object with `branch`
/// children and the given depth; leaves are numbers. Node count is
/// `(branch^(depth+1) - 1) / (branch - 1)` for `branch > 1`.
pub fn balanced_tree(depth: usize, branch: usize) -> Json {
    fn build(depth: usize, branch: usize, next: &mut u64) -> Json {
        if depth == 0 {
            let v = *next;
            *next += 1;
            return Json::Num(v);
        }
        Json::object(
            (0..branch)
                .map(|i| (format!("c{i}"), build(depth - 1, branch, next)))
                .collect(),
        )
        .expect("generated keys are distinct")
    }
    let mut next = 0;
    build(depth, branch, &mut next)
}

/// A synthetic "person records" collection: an array of `n` objects with the
/// shape the paper's MongoDB example queries (`name`, `age`, `hobbies`).
pub fn person_records(n: usize, seed: u64) -> Json {
    let mut rng = StdRng::seed_from_u64(seed);
    let firsts = ["John", "Sue", "Ana", "Wei", "Omar", "Ivy", "Leo", "Mia"];
    let lasts = ["Doe", "Smith", "Lopez", "Chen", "Haddad", "Kim"];
    let hobbies = ["fishing", "yoga", "chess", "running", "painting"];
    Json::Array(
        (0..n)
            .map(|i| {
                let nh = rng.gen_range(0..3);
                let mut hs = Vec::new();
                for _ in 0..nh {
                    hs.push(Json::str(hobbies[rng.gen_range(0..hobbies.len())]));
                }
                Json::object(vec![
                    ("id".to_owned(), Json::Num(i as u64)),
                    (
                        "name".to_owned(),
                        Json::object(vec![
                            (
                                "first".to_owned(),
                                Json::str(firsts[rng.gen_range(0..firsts.len())]),
                            ),
                            (
                                "last".to_owned(),
                                Json::str(lasts[rng.gen_range(0..lasts.len())]),
                            ),
                        ])
                        .expect("distinct"),
                    ),
                    ("age".to_owned(), Json::Num(rng.gen_range(18..90))),
                    ("hobbies".to_owned(), Json::Array(hs)),
                ])
                .expect("distinct")
            })
            .collect(),
    )
}

// ---- hostile corpus ----------------------------------------------------
//
// Adversarial *texts* (not values — several are deliberately rejected by
// the parser) for the robustness suites: every pipeline stage must either
// process these or return a structured error, never panic or abort.

/// `depth` unclosed-then-closed array brackets around a scalar:
/// `[[[...0...]]]`. Trips depth limits; with limits raised it stresses
/// every height-sensitive algorithm.
pub fn hostile_deep_nesting(depth: usize) -> String {
    let mut s = String::with_capacity(2 * depth + 1);
    for _ in 0..depth {
        s.push('[');
    }
    s.push('0');
    for _ in 0..depth {
        s.push(']');
    }
    s
}

/// An object of `n_keys` members whose keys are each `key_len` bytes —
/// interner and hash-table stress (a single 1 MB key is
/// `hostile_huge_keys(1 << 20, 1)`).
pub fn hostile_huge_keys(key_len: usize, n_keys: usize) -> String {
    let mut s = String::from("{");
    for i in 0..n_keys {
        if i > 0 {
            s.push(',');
        }
        // Distinct keys: a numeric prefix, padded to key_len with 'k'.
        let prefix = format!("{i}_");
        s.push('"');
        s.push_str(&prefix);
        for _ in prefix.len()..key_len {
            s.push('k');
        }
        s.push_str("\":0");
    }
    s.push('}');
    s
}

/// An object repeating the same key `n` times — the paper's §2 model
/// requires pairwise-distinct keys, so this must be *rejected*, and the
/// duplicate detector must stay near-linear while doing it.
pub fn hostile_duplicate_keys(n: usize) -> String {
    let mut s = String::from("{");
    for i in 0..n {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"k\":{i}"));
    }
    s.push('}');
    s
}

/// The seeded hostile corpus used by the adversarial tests and the s7
/// fault-injection harness: `(label, text)` pairs mixing inputs that
/// must parse (nasty but legal) with inputs that must be rejected with
/// a structured error.
pub fn hostile_corpus(seed: u64) -> Vec<(&'static str, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let wide = {
        // A legal sibling flood: many distinct keys at one level.
        let n = 2000 + rng.gen_range(0..100) as usize;
        crate::gen::wide_object(n).to_string()
    };
    vec![
        ("deep_1k", hostile_deep_nesting(1000)),
        ("deep_100k", hostile_deep_nesting(100_000)),
        ("huge_key_1mb", hostile_huge_keys(1 << 20, 1)),
        ("huge_keys_64x16kb", hostile_huge_keys(16 << 10, 64)),
        ("dup_flood_10k", hostile_duplicate_keys(10_000)),
        ("wide_sibling_flood", wide),
        ("unclosed_deep", "[".repeat(5000)),
        ("trailing_garbage", "{\"a\":1} [".to_owned()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_json_is_deterministic_in_seed() {
        let cfg = GenConfig::sized(7, 500);
        assert_eq!(random_json(&cfg), random_json(&cfg));
        let other = GenConfig::sized(8, 500);
        assert_ne!(random_json(&cfg), random_json(&other));
    }

    #[test]
    fn random_json_respects_depth_limit() {
        let cfg = GenConfig {
            max_depth: 3,
            ..GenConfig::sized(1, 2000)
        };
        let j = random_json(&cfg);
        assert!(j.height() <= 3, "height {} > 3", j.height());
    }

    #[test]
    fn random_json_size_tracks_target() {
        for target in [64, 512, 4096] {
            let cfg = GenConfig {
                max_depth: 64,
                ..GenConfig::sized(3, target)
            };
            let n = random_json(&cfg).node_count();
            assert!(n <= target + 1, "{n} nodes exceeds target {target}");
        }
    }

    #[test]
    fn structured_generators() {
        assert_eq!(deep_chain(5, "k", Json::Num(0)).height(), 5);
        assert_eq!(wide_object(10).as_object().unwrap().len(), 10);
        assert_eq!(wide_array(10).as_array().unwrap().len(), 10);
        let b = balanced_tree(3, 2);
        assert_eq!(b.node_count(), 15);
        assert_eq!(b.height(), 3);
    }

    #[test]
    fn duplicates_controlled() {
        let j = array_with_duplicates(100, 5, 11);
        let t = crate::tree::JsonTree::build(&j);
        let c = crate::canon::CanonTable::build(&t);
        // ≤ 5 distinct element objects + 5 numbers + root = ≤ 11 classes.
        assert!(c.class_count() <= 11);
    }

    #[test]
    fn person_records_shape() {
        let j = person_records(10, 1);
        let people = j.as_array().unwrap();
        assert_eq!(people.len(), 10);
        for p in people {
            assert!(p.get("name").unwrap().get("first").unwrap().is_string());
            assert!(p.get("age").unwrap().is_number());
            assert!(p.get("hobbies").unwrap().is_array());
        }
    }
}
