//! Thompson NFA construction and simulation-based matching.

use crate::ast::Regex;
use crate::classes::CharClass;

/// A state index within an [`Nfa`].
pub type StateId = usize;

/// One NFA transition.
#[derive(Debug, Clone)]
pub enum Transition {
    /// Consume one character from the class.
    Char(CharClass, StateId),
    /// Spontaneous move.
    Eps(StateId),
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Outgoing transitions per state.
    pub trans: Vec<Vec<Transition>>,
    /// Start state.
    pub start: StateId,
    /// Accept state.
    pub accept: StateId,
}

impl Nfa {
    /// Thompson construction. Linear in the size of the regex.
    pub fn from_regex(r: &Regex) -> Nfa {
        let mut nfa = Nfa {
            trans: Vec::new(),
            start: 0,
            accept: 0,
        };
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        nfa.build(r, start, accept);
        nfa
    }

    fn new_state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.trans.len() - 1
    }

    fn build(&mut self, r: &Regex, from: StateId, to: StateId) {
        match r {
            Regex::Empty => {}
            Regex::Epsilon => self.trans[from].push(Transition::Eps(to)),
            Regex::Class(c) => {
                if !c.is_empty() {
                    self.trans[from].push(Transition::Char(c.clone(), to));
                }
            }
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.trans[from].push(Transition::Eps(to));
                }
            }
            Regex::Alt(branches) => {
                for b in branches {
                    self.build(b, from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.new_state();
                self.trans[from].push(Transition::Eps(hub));
                self.trans[hub].push(Transition::Eps(to));
                let body_start = self.new_state();
                self.trans[hub].push(Transition::Eps(body_start));
                self.build(inner, body_start, hub);
            }
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// ε-closure of a set of states (in-place expansion).
    pub fn eps_closure(&self, set: &mut Vec<StateId>, on: &mut [bool]) {
        let mut stack: Vec<StateId> = set.clone();
        while let Some(s) = stack.pop() {
            for t in &self.trans[s] {
                if let Transition::Eps(n) = t {
                    if !on[*n] {
                        on[*n] = true;
                        set.push(*n);
                        stack.push(*n);
                    }
                }
            }
        }
    }
}

/// An NFA packaged for repeated matching.
#[derive(Debug, Clone)]
pub struct CompiledRegex {
    nfa: Nfa,
}

impl CompiledRegex {
    /// Wraps an NFA.
    pub fn new(nfa: Nfa) -> CompiledRegex {
        CompiledRegex { nfa }
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Anchored membership: `s ∈ L(e)`. Runs the standard subset simulation
    /// in `O(|s| · |e|)`.
    pub fn is_match(&self, s: &str) -> bool {
        let n = &self.nfa;
        let mut on = vec![false; n.state_count()];
        let mut current = vec![n.start];
        on[n.start] = true;
        n.eps_closure(&mut current, &mut on);

        for c in s.chars() {
            let mut next: Vec<StateId> = Vec::with_capacity(current.len());
            let mut on_next = vec![false; n.state_count()];
            for &s in &current {
                for t in &n.trans[s] {
                    if let Transition::Char(cc, to) = t {
                        if cc.contains(c) && !on_next[*to] {
                            on_next[*to] = true;
                            next.push(*to);
                        }
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            n.eps_closure(&mut next, &mut on_next);
            current = next;
            on = on_next;
        }
        let _ = on;
        current.contains(&n.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pat: &str) -> CompiledRegex {
        Regex::parse(pat).unwrap().compile()
    }

    #[test]
    fn anchored_matching() {
        let r = c("ab");
        assert!(r.is_match("ab"));
        assert!(!r.is_match("xaby"), "matching must be anchored");
        assert!(!r.is_match("a"));
    }

    #[test]
    fn empty_language_never_matches() {
        let r = CompiledRegex::new(Nfa::from_regex(&Regex::Empty));
        assert!(!r.is_match(""));
        assert!(!r.is_match("a"));
    }

    #[test]
    fn sigma_star_matches_everything() {
        let r = CompiledRegex::new(Nfa::from_regex(&Regex::sigma_star()));
        for s in ["", "a", "hello — 世界", "\n\t"] {
            assert!(r.is_match(s));
        }
    }

    #[test]
    fn nested_stars() {
        let r = c("(a*b)*");
        assert!(r.is_match(""));
        assert!(r.is_match("b"));
        assert!(r.is_match("aabab"));
        assert!(!r.is_match("aa"));
    }

    #[test]
    fn state_count_is_linear() {
        let small = Nfa::from_regex(&Regex::parse("(a|b)*c").unwrap());
        let big = Nfa::from_regex(&Regex::parse("((a|b)*c|d+e?f{3}){2}").unwrap());
        assert!(small.state_count() < 20);
        assert!(big.state_count() < 120);
    }

    #[test]
    fn unicode_classes() {
        let r = c("[α-ω]+");
        assert!(r.is_match("αβγ"));
        assert!(!r.is_match("abc"));
    }
}
