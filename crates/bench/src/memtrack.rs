//! A counting global allocator for the experiment harness: the S4 fusion
//! experiment reports how many heap allocations and how much peak live
//! memory each parse path costs, which is the "intermediate allocation"
//! claim fusion makes (the two-pass route materialises an owned `Json` —
//! one allocation per container/string plus the value arena — before the
//! tree; the fused route never does).
//!
//! The harness binary installs [`CountingAlloc`] as its
//! `#[global_allocator]`, but the counters are **off by default**: outside a
//! [`measure`] window every allocation pays exactly one relaxed bool load,
//! so the *timed* regions of every experiment — including S4's own wall
//! clocks, whose two sides allocate very differently — run effectively
//! uninstrumented. Only the dedicated allocation-profile runs flip the
//! counters on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};

/// The counting allocator (a zero-sized wrapper over [`System`]).
pub struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Records `grown` freshly live bytes and updates the high-water mark.
fn grow(grown: usize) {
    let live = LIVE.fetch_add(grown, Relaxed) + grown;
    PEAK.fetch_max(live, Relaxed);
}

/// Releases `shrunk` live bytes; saturates at zero so frees of memory
/// allocated *before* the measure window cannot wrap the counter.
fn shrink(shrunk: usize) {
    let _ = LIVE.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(shrunk)));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
            grow(layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ENABLED.load(Relaxed) {
            shrink(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
            if new_size >= layout.size() {
                grow(new_size - layout.size());
            } else {
                shrink(layout.size() - new_size);
            }
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation profile of one measured region.
#[derive(Debug, Clone, Copy)]
pub struct AllocProfile {
    /// Heap allocation calls (`alloc` + `realloc`) made by the region.
    pub allocs: u64,
    /// Peak live heap bytes the region allocated above its entry level —
    /// its own high-water mark, including any transient intermediates.
    pub peak_bytes: usize,
}

/// Runs `f` with the counters enabled and reports its allocation profile.
/// Counters read zero unless [`CountingAlloc`] is installed as the global
/// allocator. Not reentrant (the harness is single-threaded).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocProfile) {
    ALLOCS.store(0, Relaxed);
    LIVE.store(0, Relaxed);
    PEAK.store(0, Relaxed);
    ENABLED.store(true, Relaxed);
    let out = f();
    ENABLED.store(false, Relaxed);
    let profile = AllocProfile {
        allocs: ALLOCS.load(Relaxed),
        peak_bytes: PEAK.load(Relaxed),
    };
    (out, profile)
}
