//! A concrete syntax for JNL formulas, matching the `Display`
//! implementations in [`crate::ast`].
//!
//! ```text
//! unary  := or                          binary := seq (';' seq)*
//! or     := and ('|' and)*              seq    := atom '*'*
//! and    := not ('&' not)*              atom   := 'eps'
//! not    := '!' not | atom                      | '<' unary '>'
//! atom   := 'true'                               | '(' binary ')'
//!         | '(' unary ')'                        | '@' step
//!         | '[' binary ']'              step   := '"' key '"'     (X_w)
//!         | 'eqdoc(' binary ',' json ')'        | '-'? digits     (X_i)
//!         | 'eqpair(' binary ',' binary ')'     | '/' regex '/'   (X_e)
//!                                               | '[' i ':' (j|'*') ']'
//! ```
//!
//! ```
//! use jnl::parse_unary;
//! let phi = parse_unary(r#"[@"name" ; @"first"] & !eqdoc(@"age", 31)"#).unwrap();
//! assert!(phi.fragment().is_deterministic());
//! ```

use std::fmt;

use relex::Regex;

use crate::ast::{Binary, Unary};

/// A JNL syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JnlParseError {
    /// Byte offset into the source.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for JnlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JNL syntax error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JnlParseError {}

/// Parses a unary JNL formula.
pub fn parse_unary(src: &str) -> Result<Unary, JnlParseError> {
    let mut p = P::new(src);
    p.ws();
    let u = p.unary()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing content"));
    }
    Ok(u)
}

/// Parses a binary JNL formula.
pub fn parse_binary(src: &str) -> Result<Binary, JnlParseError> {
    let mut p = P::new(src);
    p.ws();
    let b = p.binary()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing content"));
    }
    Ok(b)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str) -> P<'a> {
        P { src, pos: 0 }
    }

    fn err(&self, msg: &str) -> JnlParseError {
        JnlParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), JnlParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn unary(&mut self) -> Result<Unary, JnlParseError> {
        let mut branches = vec![self.and()?];
        loop {
            self.ws();
            if self.eat("|") {
                self.ws();
                branches.push(self.and()?);
            } else {
                break;
            }
        }
        Ok(Unary::or(branches))
    }

    fn and(&mut self) -> Result<Unary, JnlParseError> {
        let mut parts = vec![self.not()?];
        loop {
            self.ws();
            if self.eat("&") {
                self.ws();
                parts.push(self.not()?);
            } else {
                break;
            }
        }
        Ok(Unary::and(parts))
    }

    fn not(&mut self) -> Result<Unary, JnlParseError> {
        self.ws();
        if self.eat("!") {
            Ok(Unary::not(self.not()?))
        } else {
            self.uatom()
        }
    }

    fn uatom(&mut self) -> Result<Unary, JnlParseError> {
        self.ws();
        if self.eat("true") {
            return Ok(Unary::True);
        }
        if self.eat("eqdoc") {
            self.ws();
            self.expect("(")?;
            let a = self.binary()?;
            self.ws();
            self.expect(",")?;
            self.ws();
            let doc = self.json_literal()?;
            self.ws();
            self.expect(")")?;
            return Ok(Unary::eq_doc(a, doc));
        }
        if self.eat("eqpair") {
            self.ws();
            self.expect("(")?;
            let a = self.binary()?;
            self.ws();
            self.expect(",")?;
            let b = self.binary()?;
            self.ws();
            self.expect(")")?;
            return Ok(Unary::eq_pair(a, b));
        }
        if self.eat("(") {
            let u = self.unary()?;
            self.ws();
            self.expect(")")?;
            return Ok(u);
        }
        if self.eat("[") {
            let b = self.binary()?;
            self.ws();
            self.expect("]")?;
            return Ok(Unary::exists(b));
        }
        Err(self.err("expected a unary formula"))
    }

    fn binary(&mut self) -> Result<Binary, JnlParseError> {
        self.ws();
        let mut parts = vec![self.seq()?];
        loop {
            self.ws();
            if self.eat(";") {
                self.ws();
                parts.push(self.seq()?);
            } else {
                break;
            }
        }
        Ok(Binary::compose(parts))
    }

    fn seq(&mut self) -> Result<Binary, JnlParseError> {
        let mut b = self.batom()?;
        loop {
            self.ws();
            if self.eat("*") {
                b = Binary::star(b);
            } else {
                break;
            }
        }
        Ok(b)
    }

    fn batom(&mut self) -> Result<Binary, JnlParseError> {
        self.ws();
        if self.eat("eps") {
            return Ok(Binary::Epsilon);
        }
        if self.eat("<") {
            let u = self.unary()?;
            self.ws();
            self.expect(">")?;
            return Ok(Binary::test(u));
        }
        if self.eat("(") {
            let b = self.binary()?;
            self.ws();
            self.expect(")")?;
            return Ok(b);
        }
        if self.eat("@") {
            return self.step();
        }
        Err(self.err("expected a binary formula"))
    }

    fn step(&mut self) -> Result<Binary, JnlParseError> {
        match self.peek() {
            Some('"') => {
                let s = self.quoted_string()?;
                Ok(Binary::Key(s))
            }
            Some('/') => {
                self.pos += 1;
                let start = self.pos;
                let mut escaped = false;
                loop {
                    let Some(c) = self.peek() else {
                        return Err(self.err("unterminated regex step"));
                    };
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '/' {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                let raw = &self.src[start..self.pos];
                self.pos += 1; // closing '/'
                let unescaped = raw.replace("\\/", "/");
                let e = Regex::parse(&unescaped)
                    .map_err(|e| self.err(&format!("bad regex in step: {e}")))?;
                Ok(Binary::KeyRegex(e))
            }
            Some('[') => {
                self.pos += 1;
                self.ws();
                let i = self.nat()?;
                self.ws();
                self.expect(":")?;
                self.ws();
                let j = if self.eat("*") {
                    None
                } else {
                    Some(self.nat()?)
                };
                self.ws();
                self.expect("]")?;
                if let Some(j) = j {
                    if j < i {
                        return Err(self.err("range step with j < i"));
                    }
                }
                Ok(Binary::Range(i, j))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let neg = self.eat("-");
                let n = self.nat()?;
                let v = n as i64;
                Ok(Binary::Index(if neg { -v } else { v }))
            }
            _ => Err(self.err("expected a step after `@`")),
        }
    }

    fn nat(&mut self) -> Result<u64, JnlParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("number too large"))
    }

    fn quoted_string(&mut self) -> Result<String, JnlParseError> {
        // Delegate to the JSON string parser for escapes.
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('"'));
        self.pos += 1;
        let mut escaped = false;
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += c.len_utf8();
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                break;
            }
        }
        let slice = &self.src[start..self.pos];
        match jsondata::parse(slice) {
            Ok(jsondata::Json::Str(s)) => Ok(s),
            _ => Err(self.err("invalid string literal")),
        }
    }

    fn json_literal(&mut self) -> Result<jsondata::Json, JnlParseError> {
        // Scan the JSON extent (balanced braces/brackets, strings aware),
        // then hand it to the JSON parser.
        let start = self.pos;
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        while let Some(c) = self.peek() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                self.pos += c.len_utf8();
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    self.pos += 1;
                }
                '{' | '[' => {
                    depth += 1;
                    self.pos += 1;
                }
                '}' | ']' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                ',' | ')' if depth == 0 => break,
                _ => self.pos += c.len_utf8(),
            }
        }
        let slice = self.src[start..self.pos].trim();
        jsondata::parse(slice).map_err(|e| JnlParseError {
            offset: start,
            message: format!("invalid JSON document in formula: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};

    #[test]
    fn parses_deterministic_formulas() {
        let phi = parse_unary(r#"[@"name" ; @"first"]"#).unwrap();
        assert_eq!(
            phi,
            U::exists(B::compose(vec![B::key("name"), B::key("first")]))
        );
        let phi = parse_unary(r#"eqdoc(@"age", 32)"#).unwrap();
        assert_eq!(phi, U::eq_doc(B::key("age"), jsondata::Json::Num(32)));
        let phi = parse_unary(r#"eqpair(@0, @-1)"#).unwrap();
        assert_eq!(phi, U::eq_pair(B::index(0), B::index(-1)));
    }

    #[test]
    fn parses_boolean_structure() {
        let phi = parse_unary(r#"true & ![@"a"] | [@"b"]"#).unwrap();
        // & binds tighter than |
        assert_eq!(
            phi,
            U::or(vec![
                U::and(vec![U::True, U::not(U::exists(B::key("a")))]),
                U::exists(B::key("b")),
            ])
        );
    }

    #[test]
    fn parses_nondeterministic_and_recursive() {
        let phi = parse_unary(r#"[(@/a(b|c)a/ ; @[0:*])*]"#).unwrap();
        let f = phi.fragment();
        assert!(f.nondeterministic && f.recursive);
        let phi = parse_unary(r#"[@[2:5]]"#).unwrap();
        assert_eq!(phi, U::exists(B::range(2, Some(5))));
    }

    #[test]
    fn parses_tests_and_eps() {
        let phi = parse_unary(r#"[<[@"x"]> ; eps ; @"x"]"#).unwrap();
        assert_eq!(
            phi,
            U::exists(B::compose(vec![
                B::test(U::exists(B::key("x"))),
                B::key("x"),
            ]))
        );
    }

    #[test]
    fn parses_json_documents_in_eqdoc() {
        let phi = parse_unary(r#"eqdoc(@"p", {"a": [1, 2], "b": "x,y"})"#).unwrap();
        match phi {
            U::EqDoc(_, doc) => {
                assert_eq!(doc, jsondata::parse(r#"{"a":[1,2],"b":"x,y"}"#).unwrap())
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let sources = [
            r#"[@"name" ; @"first"]"#,
            r#"eqdoc(@"hobbies" ; @-1, "yoga")"#,
            r#"!([@"a"] & [@"b"]) | true"#,
            r#"[(@/x+/)* ; @[1:*]]"#,
            r#"eqpair(<true> ; @"l", @"r")"#,
        ];
        for src in sources {
            let phi = parse_unary(src).unwrap();
            let round = parse_unary(&phi.to_string())
                .unwrap_or_else(|e| panic!("reparse of {} failed: {e}", phi));
            assert_eq!(phi, round, "source {src}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "[",
            r#"[@"a" ;]"#,
            "eqdoc(@1)",
            "@\"a\"", // binary where unary expected
            "true true",
            "[@[5:2]]",
            "[@/(/]",
        ] {
            assert!(parse_unary(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parse_binary_entry_point() {
        let b = parse_binary(r#"(@"a")* ; @0"#).unwrap();
        assert_eq!(b, B::compose(vec![B::star(B::key("a")), B::index(0)]));
    }
}
