//! The reference evaluator: a direct transcription of the denotational
//! semantics of §4.2/§4.3.
//!
//! Binary formulas are materialised as explicit pair sets and `(α)*` as an
//! iterated-union fixpoint, exactly as written in the paper. This is
//! `O(|J|²)` space and worse time — it exists as the differential-testing
//! oracle against which the efficient engines are validated, not for use.

use std::collections::HashSet;

use jsondata::{JsonTree, NodeId};

use crate::ast::{Binary, Unary};
use crate::eval::{EvalContext, NodeSet};

/// Evaluates `φ`, returning the satisfying node set.
pub fn eval(tree: &JsonTree, phi: &Unary) -> NodeSet {
    let mut ctx = EvalContext::new(tree);
    eval_unary(&mut ctx, phi)
}

fn eval_unary(ctx: &mut EvalContext<'_>, phi: &Unary) -> NodeSet {
    let n = ctx.tree.node_count();
    match phi {
        Unary::True => vec![true; n],
        Unary::Not(p) => {
            let mut s = eval_unary(ctx, p);
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Unary::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Unary::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_unary(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        Unary::Exists(alpha) => {
            let pairs = eval_binary(ctx, alpha);
            let mut s = vec![false; n];
            for (a, _) in pairs {
                s[a.index()] = true;
            }
            s
        }
        Unary::EqDoc(alpha, doc) => {
            let target = ctx.class_of_doc(doc);
            let pairs = eval_binary(ctx, alpha);
            let mut s = vec![false; n];
            if let Some(t) = target {
                for (a, b) in pairs {
                    if ctx.canon.class_of(b) == t {
                        s[a.index()] = true;
                    }
                }
            }
            s
        }
        Unary::EqPair(alpha, beta) => {
            let pa = eval_binary(ctx, alpha);
            let pb = eval_binary(ctx, beta);
            let mut s = vec![false; n];
            // Group reachable classes per source node.
            let mut per_a: Vec<HashSet<u32>> = vec![HashSet::new(); n];
            for (a, x) in &pa {
                per_a[a.index()].insert(ctx.canon.class_of(*x));
            }
            for (a, y) in &pb {
                if per_a[a.index()].contains(&ctx.canon.class_of(*y)) {
                    s[a.index()] = true;
                }
            }
            s
        }
    }
}

/// Materialises `JαK_J` as a set of node pairs.
fn eval_binary(ctx: &mut EvalContext<'_>, alpha: &Binary) -> HashSet<(NodeId, NodeId)> {
    let tree = ctx.tree;
    match alpha {
        Binary::Epsilon => tree.node_ids().map(|n| (n, n)).collect(),
        Binary::Test(phi) => {
            let s = eval_unary(ctx, phi);
            tree.node_ids()
                .filter(|n| s[n.index()])
                .map(|n| (n, n))
                .collect()
        }
        Binary::Key(w) => tree
            .node_ids()
            .filter_map(|n| tree.child_by_key(n, w).map(|c| (n, c)))
            .collect(),
        Binary::Index(i) => tree
            .node_ids()
            .filter_map(|n| tree.child_by_signed_index(n, *i).map(|c| (n, c)))
            .collect(),
        Binary::KeyRegex(e) => {
            // Reference semantics on purpose: a fresh NFA run per resolved
            // key, independent of the bitset/memo tiers the efficient
            // engines use — so differential tests exercise those tiers
            // against an implementation that cannot share their bugs.
            let compiled = e.compile();
            let mut out = HashSet::new();
            for n in tree.node_ids() {
                for (k, c) in tree.obj_entries(n) {
                    if compiled.is_match(tree.resolve(k)) {
                        out.insert((n, c));
                    }
                }
            }
            out
        }
        Binary::Range(i, j) => {
            let mut out = HashSet::new();
            for n in tree.node_ids() {
                let cs = tree.arr_children(n);
                let hi = match j {
                    Some(j) => (*j).min(cs.len().saturating_sub(1) as u64),
                    None => cs.len().saturating_sub(1) as u64,
                };
                if cs.is_empty() {
                    continue;
                }
                for p in *i..=hi {
                    if let Some(c) = cs.get(p as usize) {
                        out.insert((n, *c));
                    }
                }
            }
            out
        }
        Binary::Compose(parts) => {
            let mut acc: HashSet<(NodeId, NodeId)> = tree.node_ids().map(|n| (n, n)).collect();
            for p in parts {
                let step = eval_binary(ctx, p);
                acc = compose(&acc, &step);
            }
            acc
        }
        Binary::Star(inner) => {
            // Jα*K = JεK ∪ JαK ∪ Jα∘αK ∪ … as an increasing fixpoint.
            let step = eval_binary(ctx, inner);
            let mut acc: HashSet<(NodeId, NodeId)> = tree.node_ids().map(|n| (n, n)).collect();
            loop {
                let next = compose(&acc, &step);
                let before = acc.len();
                acc.extend(next);
                if acc.len() == before {
                    break;
                }
            }
            acc
        }
    }
}

fn compose(
    a: &HashSet<(NodeId, NodeId)>,
    b: &HashSet<(NodeId, NodeId)>,
) -> HashSet<(NodeId, NodeId)> {
    // Index b by first component.
    let mut by_first: std::collections::HashMap<NodeId, Vec<NodeId>> =
        std::collections::HashMap::new();
    for (x, y) in b {
        by_first.entry(*x).or_default().push(*y);
    }
    let mut out = HashSet::new();
    for (x, y) in a {
        if let Some(zs) = by_first.get(y) {
            for z in zs {
                out.insert((*x, *z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Binary as B, Unary as U};
    use jsondata::parse;

    fn tree(src: &str) -> JsonTree {
        JsonTree::build(&parse(src).unwrap())
    }

    fn sat_root(src: &str, phi: &U) -> bool {
        let t = tree(src);
        eval(&t, phi)[0]
    }

    #[test]
    fn figure1_queries() {
        let src = r#"{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}"#;
        // [X_name ∘ X_first]
        assert!(sat_root(
            src,
            &U::exists(B::compose(vec![B::key("name"), B::key("first")]))
        ));
        // EQ(X_name ∘ X_first, "John")
        assert!(sat_root(
            src,
            &U::eq_doc(
                B::compose(vec![B::key("name"), B::key("first")]),
                parse("\"John\"").unwrap()
            )
        ));
        // ¬[X_salary]
        assert!(sat_root(src, &U::not(U::exists(B::key("salary")))));
        // array access: [X_hobbies ∘ X_1]
        assert!(sat_root(
            src,
            &U::exists(B::compose(vec![B::key("hobbies"), B::index(1)]))
        ));
        assert!(!sat_root(
            src,
            &U::exists(B::compose(vec![B::key("hobbies"), B::index(2)]))
        ));
        // negative index: EQ(X_hobbies ∘ X_{-1}, "yoga")
        assert!(sat_root(
            src,
            &U::eq_doc(
                B::compose(vec![B::key("hobbies"), B::index(-1)]),
                parse("\"yoga\"").unwrap()
            )
        ));
    }

    #[test]
    fn eq_pair_compares_subtrees() {
        let src = r#"{"a": {"x": [1,2]}, "b": {"x": [1,2]}, "c": {"x": [2,1]}}"#;
        assert!(sat_root(src, &U::eq_pair(B::key("a"), B::key("b"))));
        assert!(!sat_root(src, &U::eq_pair(B::key("a"), B::key("c"))));
        // nondeterministic witness: some child of a equals some child of c? both have key x.
        assert!(!sat_root(
            src,
            &U::eq_pair(
                B::compose(vec![B::key("a"), B::key("x")]),
                B::compose(vec![B::key("c"), B::key("x")])
            )
        ));
    }

    #[test]
    fn regex_and_range_steps() {
        let src = r#"{"aba": 1, "aca": 2, "ada": 3, "arr": [10, 20, 30, 40]}"#;
        let e = relex::Regex::parse("a(b|c)a").unwrap();
        let t = tree(src);
        let set = eval(&t, &U::exists(B::key_regex(e)));
        assert!(set[0]);
        let hits = eval(
            &t,
            &U::eq_doc(
                B::compose(vec![B::key("arr"), B::range(1, Some(2))]),
                parse("30").unwrap(),
            ),
        );
        assert!(hits[0]);
        let miss = eval(
            &t,
            &U::eq_doc(
                B::compose(vec![B::key("arr"), B::range(0, Some(1))]),
                parse("30").unwrap(),
            ),
        );
        assert!(!miss[0]);
        // open range i:∞
        let open = eval(
            &t,
            &U::eq_doc(
                B::compose(vec![B::key("arr"), B::range(2, None)]),
                parse("40").unwrap(),
            ),
        );
        assert!(open[0]);
    }

    #[test]
    fn star_reaches_descendants() {
        let src = r#"{"a": {"a": {"a": {"leaf": 7}}}}"#;
        let any_desc = B::star(B::any_key());
        // descendant with value 7 under key leaf
        let phi = U::eq_doc(
            B::compose(vec![any_desc, B::key("leaf")]),
            parse("7").unwrap(),
        );
        assert!(sat_root(src, &phi));
        // bounded composition fails before depth 3
        let two = B::power(B::key("a"), 2);
        assert!(!sat_root(
            src,
            &U::exists(B::compose(vec![two, B::key("leaf")]))
        ));
    }

    #[test]
    fn unsat_key_determinism_example() {
        // From the paper (Prop 2 discussion): X_a[X_1] ∧ X_a[X_b] forces the
        // value under key a to be both array and object.
        let phi = U::and(vec![
            U::exists(B::compose(vec![
                B::key("a"),
                B::test(U::exists(B::index(0))),
            ])),
            U::exists(B::compose(vec![
                B::key("a"),
                B::test(U::exists(B::key("b"))),
            ])),
        ]);
        assert!(!sat_root(r#"{"a": [0]}"#, &phi));
        assert!(!sat_root(r#"{"a": {"b": 1}}"#, &phi));
    }

    #[test]
    fn epsilon_and_tests() {
        let src = r#"{"x": 1}"#;
        assert!(sat_root(src, &U::exists(B::Epsilon)));
        let phi = U::exists(B::compose(vec![
            B::test(U::exists(B::key("x"))),
            B::key("x"),
        ]));
        assert!(sat_root(src, &phi));
    }
}
