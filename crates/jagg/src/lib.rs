//! # jagg — a tree-native aggregation pipeline engine for collections
//!
//! The source paper (Bourhis–Reutter–Suárez–Vrgoč, PODS 2017) frames JSON
//! querying as navigation plus filtering; real document stores are driven
//! by multi-stage **aggregation pipelines**. This crate reproduces the
//! MongoDB aggregation fragment formalised by Botoeva, Corman & Townsend,
//! *"Towards a Standard for JSON Document Databases"* (see `PAPERS.md`),
//! executed natively over [`mongofind::Collection`]'s persistent tree
//! column: rows are `(segment, node)` cursors plus `$unwind` overlay
//! bindings, and documents materialise to [`jsondata::Json`] only at
//! pipeline output or at a `$group`/`$project` boundary that must
//! synthesize values (see [`exec`]).
//!
//! ## Stage ↔ formal operator mapping
//!
//! The report models a pipeline as a composition of operators on
//! *sequences of trees* (its §3 "abstract aggregation framework"); each
//! surface stage lowers to one typed [`Stage`] implementing exactly one
//! operator:
//!
//! | Surface stage | Report operator | Semantics here |
//! |---|---|---|
//! | `{"$match": φ}` | selection `Match_φ` | keep the trees satisfying the filter condition `φ` — the condition language is [`mongofind::Filter`], i.e. the source paper's deterministic JNL fragment; a leading `$match` in the exact fragment is answered by one whole-tree JNL evaluation per segment (Proposition 1) |
//! | `{"$unwind": "$p"}` | unnest `Unwind_p` | one output tree per element of the array at path `p`, with `p` rebound to the element; missing paths and empty arrays produce nothing, non-arrays pass through as their own single element |
//! | `{"$project": π}` | projection `Project_π` | synthesize a new tree per input from kept paths, field references and literals |
//! | `{"$group": {_id: g, a_i: α_i}}` | grouping `Group_{g;α}` | partition by the value of `g` (missing keys form their own group whose output omits `_id` — the §2 fragment has no `null`), fold each part through the accumulators `α` |
//! | `{"$sort": ω}` | sorting `Sort_ω` | stable reorder under [`jsondata::Json::total_cmp`] per key, missing keys first; directions are `1`/`0` (the fragment's ℕ has no `-1`) |
//! | `{"$skip": n}` / `{"$limit": n}` | subsequence `Skip_n` / `Limit_n` | positional truncation |
//! | `{"$count": "c"}` | cardinality | one `{c: n}` document (none on empty input) |
//!
//! The accumulators are `$sum`, `$avg` (floor average over ℕ), `$min`,
//! `$max`, `$count`, `$push`, `$first`, `$last` — observation rules on
//! [`Accumulator`].
//!
//! Group output order is defined (missing key first, then
//! [`jsondata::Json::total_cmp`] on `_id`), so whole-pipeline results are
//! deterministic and the value-based oracle in [`mod@reference`] must and does
//! agree output-for-output — differentially tested in
//! `tests/differential.rs` and CI-gated by `harness s5`
//! (`BENCH_aggregate.json`).
//!
//! Execution fans out on the collection's [`jpar::Pool`]: per-row stages
//! run in chunked parallel over the row vector, `$group` accumulates
//! per-chunk tables merged in chunk order at a barrier, and adjacent
//! `$sort`+`$limit` (optionally with `$skip`) fuse into a bounded-heap
//! top-k — all without changing a byte of output for any thread count
//! (the [`mod@reference`] oracle keeps the unfused full-sort semantics; the
//! determinism suite in `tests/parallel.rs` and `harness s6` gate it).
//! See [`exec`] for the threading model.
//!
//! ## Example
//!
//! ```
//! use jagg::{aggregate, Pipeline};
//! use mongofind::Collection;
//!
//! let coll = Collection::parse_str(r#"[
//!     {"name": "Sue",  "age": 28, "hobbies": ["yoga", "chess"]},
//!     {"name": "John", "age": 32, "hobbies": ["fishing"]},
//!     {"name": "Ana",  "age": 45, "hobbies": ["chess"]}
//! ]"#).unwrap();
//!
//! let pipe = Pipeline::parse_str(r#"[
//!     {"$match":  {"age": {"$gte": 30}}},
//!     {"$unwind": "$hobbies"},
//!     {"$group":  {"_id": "$hobbies", "n": {"$count": {}}}},
//!     {"$sort":   {"_id": 1}}
//! ]"#).unwrap();
//!
//! let out = aggregate(&coll, &pipe);
//! assert_eq!(out.len(), 2);
//! assert_eq!(out[0].to_string(), r#"{"_id":"chess","n":1}"#);
//! assert_eq!(out[1].to_string(), r#"{"_id":"fishing","n":1}"#);
//! ```

pub mod exec;
pub mod explain;
pub mod pipeline;
pub mod reference;

pub use exec::{aggregate, aggregate_with_ctx};
pub use explain::{
    explain, explain_analyze, PipelineAnalyze, PipelineExplain, StageActual, StageExplain,
};
pub use pipeline::{
    Accumulator, AggError, GroupSpec, IdExpr, Pipeline, ProjectField, SortOrder, Stage, ValueExpr,
};
