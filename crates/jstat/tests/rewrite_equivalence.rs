//! The rewrite-equivalence property suite: the empirical half of the
//! analyzer's soundness contract.
//!
//! Seeded random pipelines (drawn from a pool deliberately salted with
//! lint-triggering constructs — unsatisfiable and tautological filters,
//! shadowing matches, schema-dead paths, degenerate `$skip`/`$limit`
//! combinations, consecutive `$sort`s) run over seeded random
//! collections that conform to the declared schema. For every pair:
//!
//! 1. `prune(analyze(..))` must be **output-identical** to the original
//!    through both executors — the value-based `jagg::reference` oracle
//!    *and* the tree-backed `jagg::aggregate`;
//! 2. every `EmptyResult` diagnostic must be empirically dead: the
//!    pipeline prefix up to and including the flagged stage really
//!    produces zero rows;
//! 3. the sweep must actually exercise the rewrites (a healthy fraction
//!    of generated pipelines is flagged) — a vacuously-clean corpus
//!    would pin nothing.

use jagg::pipeline::Stage;
use jagg::{reference, Pipeline};
use jnl::ast::{Binary, Unary};
use jsl::translate::jnl_to_jsl_cps;
use jsl::RecursiveJsl;
use jsondata::Json;
use jstat::{Action, Analyze};
use mongofind::Collection;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The declared schema: the key `"q"` never exists (at the root). Built
/// through the same Theorem 2 translation the analyzer itself uses.
fn no_key_q_schema() -> RecursiveJsl {
    let phi = Unary::not(Unary::exists(Binary::key("q")));
    RecursiveJsl::plain(jnl_to_jsl_cps(&phi).expect("translates"))
}

/// Stage pool. Duplicated entries weight the draw toward combinations
/// that make lints fire when stages land next to each other.
const STAGES: [&str; 26] = [
    r#"{"$match": {"k": 1}}"#,
    r#"{"$match": {"k": 2}}"#,
    r#"{"$match": {"k": {"$exists": "true"}}}"#,
    r#"{"$match": {"k": {"$exists": "true"}}}"#,
    r#"{"$match": {"$and": [{"k": 1}, {"k": 2}]}}"#,
    r#"{"$match": {"$or": [{"x": {"$exists": "true"}}, {"x": {"$exists": "false"}}]}}"#,
    r#"{"$match": {"q": 1}}"#,
    r#"{"$match": {"q": {"$exists": "true"}}}"#,
    r#"{"$match": {"n": {"$gte": 2}}}"#,
    r#"{"$project": {"k": 1, "x": 1}}"#,
    r#"{"$project": {"v": "$k", "qq": "$q"}}"#,
    r#"{"$project": {"k": 1, "q": 1, "arr": 1}}"#,
    r#"{"$unwind": "$arr"}"#,
    r#"{"$unwind": "$q"}"#,
    r#"{"$group": {"_id": "$k", "n": {"$count": {}}, "s": {"$sum": "$n"}}}"#,
    r#"{"$sort": {"k": 1}}"#,
    r#"{"$sort": {"k": 1}}"#,
    r#"{"$sort": {"k": 1, "x": 0}}"#,
    r#"{"$sort": {"x": 0}}"#,
    r#"{"$sort": {"q": 1, "k": 1}}"#,
    r#"{"$skip": 1}"#,
    r#"{"$skip": 3}"#,
    r#"{"$limit": 2}"#,
    r#"{"$limit": 0}"#,
    r#"{"$limit": 4}"#,
    r#"{"$count": "n"}"#,
];

fn random_pipeline(rng: &mut StdRng) -> Pipeline {
    let n = rng.gen_range(1..=5usize);
    let stages: Vec<&str> = (0..n)
        .map(|_| STAGES[rng.gen_range(0..STAGES.len())])
        .collect();
    Pipeline::parse_str(&format!("[{}]", stages.join(", "))).expect("pool stages parse")
}

/// A schema-conforming random document: draws from the keys the stage
/// pool navigates — never `"q"`.
fn random_doc(rng: &mut StdRng) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if rng.gen_bool(0.8) {
        pairs.push(("k".to_owned(), Json::Num(rng.gen_range(0..4u64))));
    }
    if rng.gen_bool(0.5) {
        pairs.push(("x".to_owned(), Json::Num(rng.gen_range(0..3u64))));
    }
    if rng.gen_bool(0.5) {
        pairs.push(("n".to_owned(), Json::Num(rng.gen_range(0..5u64))));
    }
    if rng.gen_bool(0.6) {
        let len = rng.gen_range(0..3usize);
        let items = (0..len).map(|i| Json::Num(i as u64)).collect();
        pairs.push(("arr".to_owned(), Json::Array(items)));
    }
    if rng.gen_bool(0.3) {
        pairs.push((
            "name".to_owned(),
            Json::object(vec![("first".to_owned(), Json::Str("Sue".to_owned()))])
                .expect("distinct keys"),
        ));
    }
    Json::object(pairs).expect("distinct keys")
}

fn random_collection(rng: &mut StdRng) -> (Collection, Vec<Json>) {
    let n = rng.gen_range(0..=12usize);
    let docs: Vec<Json> = (0..n).map(|_| random_doc(rng)).collect();
    let coll = Collection::parse_str(&Json::Array(docs.clone()).to_string()).expect("round-trips");
    (coll, docs)
}

#[test]
fn pruned_pipelines_are_output_identical_on_generated_corpora() {
    let schema = no_key_q_schema();
    let mut rng = StdRng::seed_from_u64(0x6a737461);
    let mut flagged = 0usize;
    let mut rewritten = 0usize;
    const ROUNDS: usize = 300;

    for round in 0..ROUNDS {
        let pipe = random_pipeline(&mut rng);
        let (coll, docs) = random_collection(&mut rng);

        // Alternate between schema-aware and schema-free analysis so
        // both J004 and the schema-free lints are crossed with the same
        // pipeline distribution.
        let schema_ref = if round % 2 == 0 { Some(&schema) } else { None };
        let report = pipe.analyze(schema_ref);
        if !report.is_clean() {
            flagged += 1;
        }
        let pruned = pipe.prune(&report);
        if report.has_rewrite() {
            rewritten += 1;
        }

        // (1) output-identical through the value oracle…
        let want = reference::aggregate(&docs, &pipe);
        let got = reference::aggregate(&docs, &pruned);
        assert_eq!(
            want, got,
            "round {round}: prune changed reference output\n  pipeline: {:?}\n  report: {report}",
            pipe.stages
        );
        // …and through the tree executor.
        let want_tree = jagg::aggregate(&coll, &pipe);
        let got_tree = jagg::aggregate(&coll, &pruned);
        assert_eq!(
            want_tree, got_tree,
            "round {round}: prune changed tree-executor output\n  pipeline: {:?}\n  report: {report}",
            pipe.stages
        );
        // Executor agreement (belt and braces; pinned by jagg's own
        // differential suite too).
        assert_eq!(want, want_tree, "round {round}: executors disagree");

        // (2) every EmptyResult diagnostic is empirically dead.
        for d in &report.diagnostics {
            if matches!(d.action, Action::EmptyResult) {
                let prefix = Pipeline {
                    stages: pipe.stages[..=d.stage].to_vec(),
                };
                assert!(
                    reference::aggregate(&docs, &prefix).is_empty(),
                    "round {round}: stage {} flagged EmptyResult but produces rows\n  {d}",
                    d.stage
                );
            }
        }
    }

    // (3) the sweep is not vacuous.
    assert!(
        flagged * 2 >= ROUNDS,
        "only {flagged}/{ROUNDS} pipelines flagged — the pool no longer exercises the lints"
    );
    assert!(
        rewritten * 4 >= ROUNDS,
        "only {rewritten}/{ROUNDS} pipelines rewritten — the pool no longer exercises prune"
    );
}

#[test]
fn delete_and_replace_rewrites_shrink_but_preserve_row_counts() {
    // Focused determinism check: a pipeline hitting J002 + J003 + J005
    // at once prunes to a strictly smaller stage list with identical
    // output on a hand-written collection.
    let pipe = Pipeline::parse_str(
        r#"[
            {"$match": {"$or": [{"k": {"$exists": "true"}}, {"k": {"$exists": "false"}}]}},
            {"$match": {"k": 3}},
            {"$match": {"k": {"$exists": "true"}}},
            {"$sort": {"k": 1}},
            {"$sort": {"k": 1, "x": 0}}
        ]"#,
    )
    .unwrap();
    let report = pipe.analyze(None);
    let pruned = pipe.prune(&report);
    assert!(
        pruned.stages.len() < pipe.stages.len(),
        "expected a shrink, report: {report}"
    );
    // The tautology, the shadowed match and the overwritten sort are all
    // gone; the real filter and the final sort remain.
    assert_eq!(pruned.stages.len(), 2);
    assert!(matches!(pruned.stages[0], Stage::Match(_)));
    assert!(matches!(pruned.stages[1], Stage::Sort(_)));

    let docs: Vec<Json> = (0..8)
        .map(|i| {
            Json::object(vec![
                ("k".to_owned(), Json::Num(i % 4)),
                ("x".to_owned(), Json::Num(7 - i)),
            ])
            .expect("distinct keys")
        })
        .collect();
    assert_eq!(
        reference::aggregate(&docs, &pipe),
        reference::aggregate(&docs, &pruned)
    );
}
