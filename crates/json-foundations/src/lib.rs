//! # json-foundations
//!
//! A production-quality Rust implementation of Bourhis, Reutter, Suárez &
//! Vrgoč, *"JSON: data model, query languages and schema specification"*
//! (PODS 2017): the formal JSON tree data model, the JSON Navigation Logic
//! (JNL), the JSON Schema Logic (JSL) with recursion, JSON Schema (draft-4
//! fragment) with translations to and from JSL, J-automata, and the two
//! practical query dialects the paper surveys (MongoDB-style `find` filters
//! and JSONPath).
//!
//! This facade crate re-exports the individual workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`data`] | `jsondata` | JSON values, parser, the §3 tree model, canonical subtree labels |
//! | [`regex`] | `relex` | self-contained regular-expression engine over Σ |
//! | [`nav`] | `jnl` | JSON Navigation Logic (§4) with evaluation + satisfiability |
//! | [`schema_logic`] | `jsl` | JSON Schema Logic (§5), recursive JSL, JSL↔JNL |
//! | [`schema`] | `jschema` | JSON Schema: parse, validate, Schema↔JSL, `$ref`, inference |
//! | [`automata`] | `jautomata` | J-automata: runs, complement, emptiness |
//! | [`mongo`] | `mongofind` | MongoDB-style `find` filters & projection over JNL |
//! | [`agg`] | `jagg` | tree-native aggregation pipelines (`$match`/`$unwind`/`$group`/…) over collections |
//! | [`stat`] | `jstat` | static analysis: sat/containment-backed pipeline lints + the pruning rewrite |
//! | [`serve`] | `jserve` | concurrent multi-tenant serving: snapshot isolation, admission control, governed verbs |
//! | [`path`] | `jsonpath` | JSONPath dialect over recursive JNL |
//! | [`par`] | `jpar` | scoped worker pool driving the parallel query paths |
//! | [`guard`] | `jguard` | per-query governance: deadlines, budgets, cancellation, panic containment |
//! | [`trace`] | `jtrace` | observability: per-query metrics sink, counter snapshots, flight-recorder span log |
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! mapping from the paper's propositions to code and measurements.

pub use jsondata as data;
pub use relex as regex;

pub use jnl as nav;
pub use jsl as schema_logic;

pub use jautomata as automata;
pub use jschema as schema;

pub use jagg as agg;
pub use jguard as guard;
pub use jpar as par;
pub use jserve as serve;
pub use jsonpath as path;
pub use jstat as stat;
pub use jtrace as trace;
pub use mongofind as mongo;

/// Commonly used items, importable as `use json_foundations::prelude::*`.
pub mod prelude {
    pub use jsondata::{parse, parse_to_tree, CanonTable, Json, JsonTree, NodeId, NodeKind};
}
