//! The JSON tree model of §3.1: an arena-backed, immutable tree whose nodes
//! are partitioned into objects, arrays, strings and numbers, with
//! key-labelled object edges and index-labelled array edges.
//!
//! Design notes:
//!
//! * Node ids are assigned in **document-order pre-order** during
//!   construction (the order a streaming parser encounters values), so for
//!   every node `n` and every descendant `d` of `n`, `n.index() < d.index()`
//!   and every subtree occupies a contiguous id block. Iterating ids in
//!   *descending* order therefore visits children before parents — the
//!   bottom-up evaluation order used throughout the logic engines — without
//!   materialising an explicit post-order.
//! * All strings — object keys **and** string leaves — are interned into a
//!   per-tree [`Interner`]; nodes store [`Sym`]s, never owned strings. Edge
//!   tests on the logic engines' hot paths are therefore `u32` compares.
//! * Storage is CSR-style: one flattened `children` array (with a parallel
//!   `keys` array of symbols) addressed by per-node offset spans, instead of
//!   one heap allocation per node. Object children are stored **sorted by
//!   `Sym`**, so [`JsonTree::child_by_key`] is an `O(1)` interner probe
//!   followed by a binary search over `u32`s — and a key that was never
//!   interned answers `None` without touching the node at all. JSON objects
//!   are unordered (§3.2 difference 1), so no information is lost.
//! * Construction and reconstruction are iterative: document depth never
//!   translates into call-stack depth, so million-node chain documents used
//!   by the scaling benchmarks are safe.

use std::fmt;

use crate::fxhash::FxHashSet;
use crate::intern::{Interner, Sym};
use crate::value::Json;

/// Identifier of a node within one [`JsonTree`]; indexes the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw arena index (test/bench helper).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

/// The four node types partitioning the tree domain (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An object node (member of the `Obj` partition).
    Obj,
    /// An array node (member of the `Arr` partition).
    Arr,
    /// A string leaf (member of the `Str` partition).
    Str,
    /// A number leaf (member of the `Int` partition).
    Int,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Obj => "object",
            NodeKind::Arr => "array",
            NodeKind::Str => "string",
            NodeKind::Int => "number",
        };
        f.write_str(s)
    }
}

/// The label of an edge from a parent to one of its children: a key (for
/// object nodes, relation `O`) or a position (for array nodes, relation `A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeLabel<'a> {
    /// Object edge labelled with a key `w ∈ Σ*`.
    Key(&'a str),
    /// Array edge labelled with a position `i ∈ ℕ`.
    Index(usize),
}

impl fmt::Display for EdgeLabel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeLabel::Key(k) => write!(f, "{:?}", k),
            EdgeLabel::Index(i) => write!(f, "{}", i),
        }
    }
}

/// Sentinel in the flattened `keys` array for array-edge slots.
const NO_KEY: Sym = Sym::from_index(u32::MAX as usize);

/// Sentinel in `parents` for the root.
const NO_PARENT: u32 = u32::MAX;

/// An immutable JSON tree `J = (D, Obj, Arr, Str, Int, A, O, val)`.
pub struct JsonTree {
    kinds: Vec<NodeKind>,
    /// Parent node index, or [`NO_PARENT`] at the root.
    parents: Vec<u32>,
    /// Position of each node in its parent's child span; 0 for the root.
    slots: Vec<u32>,
    /// CSR offsets: node `i`'s children live at
    /// `children[child_start[i] .. child_start[i + 1]]`.
    child_start: Vec<u32>,
    /// Flattened child arrays (key-symbol-sorted for objects, positional for
    /// arrays).
    children: Vec<NodeId>,
    /// Key symbol per child slot ([`NO_KEY`] under array nodes).
    keys: Vec<Sym>,
    /// Leaf payload: the number of an `Int` node, or the interned-string
    /// index of a `Str` node.
    payload: Vec<u64>,
    /// `height[i]`: height of the subtree rooted at node `i` (leaves = 0).
    height: Vec<u32>,
    /// `size[i]`: number of nodes in the subtree rooted at node `i`.
    size: Vec<u32>,
    /// The per-tree symbol table for keys and string atoms.
    interner: Interner,
}

/// The streaming construction core shared by [`JsonTree::build`] and the
/// fused parser (`parse_to_tree` in [`crate::parse`]).
///
/// The builder consumes a **document-order event stream** — the sequence of
/// tokens a streaming JSON parser naturally produces — and assembles the CSR
/// arrays directly, with no intermediate [`Json`]:
///
/// * Node ids are assigned in document-order pre-order (parents before
///   children, subtrees contiguous).
/// * Keys and string atoms are interned the moment they are lexed, so the
///   symbol table grows in document order.
/// * Open containers live on an explicit stack (`open`); their pending child
///   entries stack up in one shared `scratch` buffer, so construction does
///   **no per-node allocation** and document depth never becomes call-stack
///   depth.
/// * When an object closes, its entries are symbol-sorted in place — the
///   invariant `child_by_sym` binary-searches on — and moved to the `closed`
///   buffer; [`TreeBuilder::finish`] lays the spans out in node-id order.
/// * Duplicate keys are detected exactly, as `Sym` collisions within one
///   open object (one probe of a shared `(node, Sym)` hash set per key —
///   symbols make the probe collision-free, unlike string hashes).
///
/// Because both construction paths reduce to this one event consumer, a
/// fused parse and a parse-then-build of the same document produce
/// [`JsonTree::identical`] trees by construction; the differential test
/// suite (`tests/parse_fusion.rs`) pins that equivalence.
pub(crate) struct TreeBuilder {
    interner: Interner,
    kinds: Vec<NodeKind>,
    parents: Vec<u32>,
    payload: Vec<u64>,
    /// Stack of open containers.
    open: Vec<OpenFrame>,
    /// Child entries `(key or NO_KEY, child id)` of all open containers,
    /// stacked; each frame owns `scratch[frame.scratch_start..]` up to the
    /// next frame's start.
    scratch: Vec<(Sym, u32)>,
    /// Child entries of closed containers, grouped per node (object spans
    /// already symbol-sorted).
    closed: Vec<(Sym, u32)>,
    /// Per-node `(offset, len)` span into `closed`; `(0, 0)` for leaves.
    closed_span: Vec<(u32, u32)>,
    /// Duplicate-key probe: `(object node id, key symbol)` pairs of every
    /// open object. Node ids never repeat, so stale entries of closed
    /// objects are inert and need no cleanup.
    seen_keys: FxHashSet<(u32, Sym)>,
    /// The key awaiting its value inside the innermost open object.
    pending_key: Sym,
}

struct OpenFrame {
    id: u32,
    scratch_start: u32,
    is_obj: bool,
}

impl TreeBuilder {
    /// A builder interning into `interner` (possibly pre-populated, for
    /// shared-interner batch loading).
    pub(crate) fn new(interner: Interner) -> TreeBuilder {
        TreeBuilder {
            interner,
            kinds: Vec::new(),
            parents: Vec::new(),
            payload: Vec::new(),
            open: Vec::new(),
            scratch: Vec::new(),
            closed: Vec::new(),
            closed_span: Vec::new(),
            seen_keys: FxHashSet::default(),
            pending_key: NO_KEY,
        }
    }

    fn new_node(&mut self, kind: NodeKind, payload: u64) -> u32 {
        let id = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.payload.push(payload);
        self.closed_span.push((0, 0));
        match self.open.last() {
            Some(f) => {
                self.parents.push(f.id);
                let key = if f.is_obj {
                    std::mem::replace(&mut self.pending_key, NO_KEY)
                } else {
                    NO_KEY
                };
                self.scratch.push((key, id));
            }
            None => self.parents.push(NO_PARENT),
        }
        id
    }

    /// A number value.
    pub(crate) fn num(&mut self, n: u64) {
        self.new_node(NodeKind::Int, n);
    }

    /// A string value (interned as an atom).
    pub(crate) fn str_atom(&mut self, s: &str) {
        let sym = self.interner.intern(s);
        self.new_node(NodeKind::Str, sym.index() as u64);
    }

    /// A string value by pre-resolved symbol. The symbol must be valid in
    /// this builder's interner (i.e. come from a tree whose interner the
    /// builder's table extends) — the replay path of
    /// [`JsonTree::concat_subtrees`] uses this to skip re-hashing strings
    /// that are already interned.
    fn str_atom_sym(&mut self, sym: Sym) {
        debug_assert!(sym.index() < self.interner.len(), "foreign symbol");
        self.new_node(NodeKind::Str, sym.index() as u64);
    }

    /// [`TreeBuilder::object_key`] by pre-resolved symbol (same validity
    /// contract as [`TreeBuilder::str_atom_sym`]).
    fn object_key_sym(&mut self, sym: Sym) -> bool {
        debug_assert!(sym.index() < self.interner.len(), "foreign symbol");
        let top = self.open.last().expect("object_key outside an object");
        debug_assert!(top.is_obj, "object_key inside an array");
        if !self.seen_keys.insert((top.id, sym)) {
            return false;
        }
        self.pending_key = sym;
        true
    }

    /// Opens an object value.
    pub(crate) fn begin_object(&mut self) {
        let id = self.new_node(NodeKind::Obj, 0);
        self.open.push(OpenFrame {
            id,
            scratch_start: self.scratch.len() as u32,
            is_obj: true,
        });
    }

    /// A member key inside the innermost open object. Returns `false` if the
    /// key duplicates an earlier member of that object (the caller reports
    /// the error; the builder is then abandoned).
    pub(crate) fn object_key(&mut self, key: &str) -> bool {
        let sym = self.interner.intern(key);
        let top = self.open.last().expect("object_key outside an object");
        debug_assert!(top.is_obj, "object_key inside an array");
        if !self.seen_keys.insert((top.id, sym)) {
            return false;
        }
        self.pending_key = sym;
        true
    }

    /// Closes the innermost object: symbol-sorts its entries and retires
    /// them to the closed buffer.
    pub(crate) fn end_object(&mut self) {
        let f = self.open.pop().expect("end_object without begin_object");
        debug_assert!(f.is_obj);
        let start = f.scratch_start as usize;
        self.scratch[start..].sort_unstable_by_key(|(s, _)| *s);
        self.closed_span[f.id as usize] = (
            self.closed.len() as u32,
            (self.scratch.len() - start) as u32,
        );
        self.closed.extend_from_slice(&self.scratch[start..]);
        self.scratch.truncate(start);
    }

    /// Opens an array value.
    pub(crate) fn begin_array(&mut self) {
        let id = self.new_node(NodeKind::Arr, 0);
        self.open.push(OpenFrame {
            id,
            scratch_start: self.scratch.len() as u32,
            is_obj: false,
        });
    }

    /// Closes the innermost array (entries keep positional order).
    pub(crate) fn end_array(&mut self) {
        let f = self.open.pop().expect("end_array without begin_array");
        debug_assert!(!f.is_obj);
        let start = f.scratch_start as usize;
        self.closed_span[f.id as usize] = (
            self.closed.len() as u32,
            (self.scratch.len() - start) as u32,
        );
        self.closed.extend_from_slice(&self.scratch[start..]);
        self.scratch.truncate(start);
    }

    /// Recovers the interner from an abandoned builder (the shared-interner
    /// entry point restores its caller's table on parse errors).
    pub(crate) fn into_interner(self) -> Interner {
        self.interner
    }

    /// Flattens into the final CSR arrays and computes the height/size
    /// measures (one descending pass: children before parents).
    pub(crate) fn finish(self) -> JsonTree {
        debug_assert!(self.open.is_empty(), "finish with open containers");
        debug_assert!(!self.kinds.is_empty(), "finish without a root value");
        let n = self.kinds.len();
        let total = self.closed.len();
        let mut child_start = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(total);
        let mut keys = Vec::with_capacity(total);
        let mut slots = vec![0u32; n];
        for i in 0..n {
            child_start.push(children.len() as u32);
            let (off, len) = self.closed_span[i];
            let span = &self.closed[off as usize..(off + len) as usize];
            for (slot, &(k, c)) in span.iter().enumerate() {
                children.push(NodeId(c));
                keys.push(k);
                slots[c as usize] = slot as u32;
            }
        }
        child_start.push(children.len() as u32);

        let mut height = vec![0u32; n];
        let mut size = vec![1u32; n];
        for i in (0..n).rev() {
            let span = child_start[i] as usize..child_start[i + 1] as usize;
            let (mut h, mut s) = (0u32, 1u32);
            for c in &children[span] {
                h = h.max(height[c.index()] + 1);
                s += size[c.index()];
            }
            height[i] = h;
            size[i] = s;
        }
        JsonTree {
            kinds: self.kinds,
            parents: self.parents,
            slots,
            child_start,
            children,
            keys,
            payload: self.payload,
            height,
            size,
            interner: self.interner,
        }
    }
}

impl JsonTree {
    /// Builds the tree representation of a JSON document, interning every
    /// object key and string leaf into the tree's symbol table.
    ///
    /// Construction replays the document in document order through the same
    /// `TreeBuilder` event core the fused parser drives, so
    /// `JsonTree::build(&parse(s)?)` and `parse_to_tree(s)` produce
    /// [`JsonTree::identical`] trees.
    pub fn build(doc: &Json) -> JsonTree {
        let mut b = TreeBuilder::new(Interner::new());
        Self::feed(&mut b, doc);
        b.finish()
    }

    /// [`JsonTree::build`] interning into a caller-owned table — the batch
    /// loading form: documents built through one interner assign the same
    /// [`Sym`] to the same string, so symbols are comparable across their
    /// trees. The returned tree carries a snapshot clone of the interner
    /// (cost `O(symbols)`); `interner` keeps accumulating for the next
    /// document.
    pub fn build_into(doc: &Json, interner: &mut Interner) -> JsonTree {
        let mut b = TreeBuilder::new(std::mem::take(interner));
        Self::feed(&mut b, doc);
        let tree = b.finish();
        *interner = tree.interner.clone();
        tree
    }

    /// Replays `doc` into the builder as a document-order event stream.
    fn feed(b: &mut TreeBuilder, doc: &Json) {
        enum Ev<'a> {
            Val(&'a Json),
            Member(&'a str, &'a Json),
            EndObj,
            EndArr,
        }
        let mut stack: Vec<Ev<'_>> = vec![Ev::Val(doc)];
        while let Some(ev) = stack.pop() {
            let v = match ev {
                Ev::EndObj => {
                    b.end_object();
                    continue;
                }
                Ev::EndArr => {
                    b.end_array();
                    continue;
                }
                Ev::Member(k, v) => {
                    let fresh = b.object_key(k);
                    debug_assert!(fresh, "Json object keys are pairwise distinct");
                    v
                }
                Ev::Val(v) => v,
            };
            match v {
                Json::Num(n) => b.num(*n),
                Json::Str(s) => b.str_atom(s),
                Json::Array(items) => {
                    b.begin_array();
                    stack.push(Ev::EndArr);
                    for item in items.iter().rev() {
                        stack.push(Ev::Val(item));
                    }
                }
                Json::Object(o) => {
                    b.begin_object();
                    stack.push(Ev::EndObj);
                    for (k, v) in o.pairs().iter().rev() {
                        stack.push(Ev::Member(k, v));
                    }
                }
            }
        }
    }

    /// Merges subtrees taken from trees that all intern through one shared
    /// symbol assignment into a **single array-rooted tree**: the result's
    /// root is an array whose `i`-th element is a copy of `parts[i]`'s
    /// subtree. This is the segment-compaction primitive of
    /// `mongofind::Collection::compact` — many single-document insert
    /// segments replay into one tree so per-segment dispatch overhead
    /// (one JNL evaluation, one canonical-label table, one parallel task
    /// *per segment*) collapses to one.
    ///
    /// `interner` must be the shared table the part trees were built
    /// through (each part's own interner is a prefix snapshot of it), so
    /// every [`Sym`] in a part resolves to the same string in `interner`
    /// and the replay copies symbols **without re-hashing a single
    /// string**. The builder consumes the table and hands it back extended
    /// (unchanged, in fact: replay interns nothing new).
    ///
    /// Replay emits each object's members in the stored symbol-sorted
    /// order, so node ids within the result are pre-order over that
    /// layout; `json_at` values are exactly the part values (object
    /// equality is unordered).
    pub fn concat_subtrees(parts: &[(&JsonTree, NodeId)], interner: &mut Interner) -> JsonTree {
        let mut b = TreeBuilder::new(std::mem::take(interner));
        b.begin_array();
        for &(tree, node) in parts {
            tree.replay_into(node, &mut b);
        }
        b.end_array();
        let merged = b.finish();
        *interner = merged.interner.clone();
        merged
    }

    /// Replays the subtree at `n` into `b` as a document-order event
    /// stream, copying pre-resolved symbols (see
    /// [`JsonTree::concat_subtrees`] for the shared-interner contract).
    fn replay_into(&self, n: NodeId, b: &mut TreeBuilder) {
        enum Ev {
            Val(NodeId),
            Member(Sym, NodeId),
            EndObj,
            EndArr,
        }
        let mut stack: Vec<Ev> = vec![Ev::Val(n)];
        while let Some(ev) = stack.pop() {
            let v = match ev {
                Ev::EndObj => {
                    b.end_object();
                    continue;
                }
                Ev::EndArr => {
                    b.end_array();
                    continue;
                }
                Ev::Member(k, v) => {
                    let fresh = b.object_key_sym(k);
                    debug_assert!(fresh, "tree object keys are pairwise distinct");
                    v
                }
                Ev::Val(v) => v,
            };
            match self.kind(v) {
                NodeKind::Int => b.num(self.payload[v.index()]),
                NodeKind::Str => b.str_atom_sym(self.str_sym(v).expect("Str payload")),
                NodeKind::Arr => {
                    b.begin_array();
                    stack.push(Ev::EndArr);
                    for &c in self.arr_children(v).iter().rev() {
                        stack.push(Ev::Val(c));
                    }
                }
                NodeKind::Obj => {
                    b.begin_object();
                    stack.push(Ev::EndObj);
                    let span = self.span(v);
                    for i in span.rev() {
                        stack.push(Ev::Member(self.keys[i], self.children[i]));
                    }
                }
            }
        }
    }

    /// Structural identity of the arena representation: same node ids, CSR
    /// layout, payloads **and symbol table**. This is strictly finer than
    /// JSON value equality — two trees of unordered-equal documents parsed
    /// from differently-ordered texts intern in different orders and are
    /// *not* identical, while `to_json()` equality still holds. The
    /// parse-fusion differential suite asserts identity between the fused
    /// and two-pass constructions of one text.
    pub fn identical(&self, other: &JsonTree) -> bool {
        self.kinds == other.kinds
            && self.parents == other.parents
            && self.slots == other.slots
            && self.child_start == other.child_start
            && self.children == other.children
            && self.keys == other.keys
            && self.payload == other.payload
            && self.interner == other.interner
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes, `|J|`.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The tree's symbol table (object keys and string atoms).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The symbol of `key` in this tree, if any node's edge or string leaf
    /// uses it — the `O(1)` probe fronting symbol-based lookups.
    pub fn sym(&self, key: &str) -> Option<Sym> {
        self.interner.lookup(key)
    }

    /// The string a symbol of this tree stands for.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Iterates over all node ids in pre-order (ascending, parents first).
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Iterates node ids bottom-up (children before parents).
    pub fn bottom_up(&self) -> impl Iterator<Item = NodeId> {
        self.node_ids().rev()
    }

    /// The kind (partition) of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// Height of the subtree rooted at `n` (leaves have height 0).
    pub fn height_of(&self, n: NodeId) -> usize {
        self.height[n.index()] as usize
    }

    /// Number of nodes in the subtree rooted at `n`.
    pub fn subtree_size(&self, n: NodeId) -> usize {
        self.size[n.index()] as usize
    }

    /// Height of the whole tree.
    pub fn height(&self) -> usize {
        self.height_of(self.root())
    }

    /// The child span of `n` in the flattened arrays.
    fn span(&self, n: NodeId) -> std::ops::Range<usize> {
        self.child_start[n.index()] as usize..self.child_start[n.index() + 1] as usize
    }

    /// Key symbols of an object node's children, sorted by `Sym`; empty for
    /// non-objects.
    pub fn obj_syms(&self, n: NodeId) -> &[Sym] {
        match self.kind(n) {
            NodeKind::Obj => &self.keys[self.span(n)],
            _ => &[],
        }
    }

    /// Child ids of an object node (parallel to [`JsonTree::obj_syms`]);
    /// empty for non-objects.
    pub fn obj_child_ids(&self, n: NodeId) -> &[NodeId] {
        match self.kind(n) {
            NodeKind::Obj => &self.children[self.span(n)],
            _ => &[],
        }
    }

    /// Object children as `(key symbol, child)` pairs, sorted by symbol —
    /// the allocation-free form the logic engines iterate.
    pub fn obj_entries(&self, n: NodeId) -> impl Iterator<Item = (Sym, NodeId)> + '_ {
        self.obj_syms(n)
            .iter()
            .copied()
            .zip(self.obj_child_ids(n).iter().copied())
    }

    /// Object children as `(key, child)` pairs with resolved key strings
    /// (for display and reference-oracle paths; hot paths should use
    /// [`JsonTree::obj_entries`]).
    pub fn obj_children(&self, n: NodeId) -> impl Iterator<Item = (&str, NodeId)> + '_ {
        self.obj_entries(n)
            .map(|(s, c)| (self.interner.resolve(s), c))
    }

    /// Array children in positional order; empty for non-arrays.
    pub fn arr_children(&self, n: NodeId) -> &[NodeId] {
        match self.kind(n) {
            NodeKind::Arr => &self.children[self.span(n)],
            _ => &[],
        }
    }

    /// Number of children of `n` (0 for leaves).
    pub fn child_count(&self, n: NodeId) -> usize {
        self.span(n).len()
    }

    /// The `O` relation restricted to `n`: the child under key `key`.
    /// Determinism (§3.1 condition 2) makes this at most one node.
    ///
    /// An `O(1)` interner probe resolves the key to a symbol — a miss means
    /// no edge anywhere in the tree carries this key — then a binary search
    /// over the node's key symbols (`u32` compares, no string work) finds
    /// the child.
    pub fn child_by_key(&self, n: NodeId, key: &str) -> Option<NodeId> {
        self.child_by_sym(n, self.interner.lookup(key)?)
    }

    /// [`JsonTree::child_by_key`] for an already-resolved symbol.
    pub fn child_by_sym(&self, n: NodeId, sym: Sym) -> Option<NodeId> {
        match self.kind(n) {
            NodeKind::Obj => {
                let span = self.span(n);
                let syms = &self.keys[span.clone()];
                syms.binary_search(&sym)
                    .ok()
                    .map(|i| self.children[span.start + i])
            }
            _ => None,
        }
    }

    /// The `A` relation restricted to `n`: the child at position `i`.
    pub fn child_by_index(&self, n: NodeId, i: usize) -> Option<NodeId> {
        self.arr_children(n).get(i).copied()
    }

    /// The child at a possibly negative position: `-1` is the last element,
    /// `-j` the j-th from the end (the paper's dual array operator).
    pub fn child_by_signed_index(&self, n: NodeId, i: i64) -> Option<NodeId> {
        let cs = self.arr_children(n);
        if self.kind(n) != NodeKind::Arr {
            return None;
        }
        let idx = if i >= 0 {
            i as usize
        } else {
            cs.len().checked_sub(i.unsigned_abs() as usize)?
        };
        cs.get(idx).copied()
    }

    /// Iterates over all children with their edge labels.
    pub fn children(&self, n: NodeId) -> ChildIter<'_> {
        ChildIter {
            tree: self,
            kind: self.kind(n),
            span: self.span(n),
            pos: 0,
        }
    }

    /// The parent of `n`, or `None` at the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        match self.parents[n.index()] {
            NO_PARENT => None,
            p => Some(NodeId(p)),
        }
    }

    /// The key symbol on the edge into `n`, if `n` is an object child — the
    /// `O(1)`, allocation-free edge label the logic engines test against.
    pub fn incoming_key_sym(&self, n: NodeId) -> Option<Sym> {
        let p = self.parent(n)?;
        match self.kind(p) {
            NodeKind::Obj => Some(
                self.keys[self.child_start[p.index()] as usize + self.slots[n.index()] as usize],
            ),
            _ => None,
        }
    }

    /// The position on the edge into `n`, if `n` is an array child.
    pub fn incoming_index(&self, n: NodeId) -> Option<u64> {
        let p = self.parent(n)?;
        match self.kind(p) {
            NodeKind::Arr => Some(self.slots[n.index()] as u64),
            _ => None,
        }
    }

    /// The label of the edge from the parent of `n` to `n`.
    pub fn edge_from_parent(&self, n: NodeId) -> Option<EdgeLabel<'_>> {
        let p = self.parent(n)?;
        Some(match self.kind(p) {
            NodeKind::Obj => EdgeLabel::Key(self.interner.resolve(
                self.keys[self.child_start[p.index()] as usize + self.slots[n.index()] as usize],
            )),
            NodeKind::Arr => EdgeLabel::Index(self.slots[n.index()] as usize),
            _ => unreachable!("leaves have no children"),
        })
    }

    /// The string value of a `Str` node.
    pub fn str_value(&self, n: NodeId) -> Option<&str> {
        self.str_sym(n).map(|s| self.interner.resolve(s))
    }

    /// The interned symbol of a `Str` node's value (string atoms share the
    /// key symbol table, so pattern tests can memoise per symbol).
    pub fn str_sym(&self, n: NodeId) -> Option<Sym> {
        match self.kind(n) {
            NodeKind::Str => Some(Sym::from_index(self.payload[n.index()] as usize)),
            _ => None,
        }
    }

    /// The numeric value of an `Int` node.
    pub fn num_value(&self, n: NodeId) -> Option<u64> {
        match self.kind(n) {
            NodeKind::Int => Some(self.payload[n.index()]),
            _ => None,
        }
    }

    /// The function `json(n)` of §3.1: the subtree rooted at `n`, which is
    /// again a valid JSON value (compositionality).
    pub fn json_at(&self, n: NodeId) -> Json {
        // Bottom-up reconstruction over the contiguous id range of the
        // subtree. Pre-order ids make every subtree a contiguous block
        // [n, n + size(n)).
        let lo = n.index();
        let hi = lo + self.subtree_size(n);
        let mut built: Vec<Option<Json>> = vec![None; hi - lo];
        for i in (lo..hi).rev() {
            let id = NodeId::from_index(i);
            let j = match self.kind(id) {
                NodeKind::Int => Json::Num(self.payload[i]),
                NodeKind::Str => {
                    Json::Str(self.str_value(id).expect("Str node has value").to_owned())
                }
                NodeKind::Arr => Json::Array(
                    self.arr_children(id)
                        .iter()
                        .map(|c| built[c.index() - lo].take().expect("child built"))
                        .collect(),
                ),
                NodeKind::Obj => Json::object(
                    self.obj_entries(id)
                        .map(|(k, c)| {
                            (
                                self.interner.resolve(k).to_owned(),
                                built[c.index() - lo].take().expect("child built"),
                            )
                        })
                        .collect(),
                )
                .expect("tree keys are distinct"),
            };
            built[i - lo] = Some(j);
        }
        built[0].take().expect("root of subtree built")
    }

    /// The full document this tree represents.
    pub fn to_json(&self) -> Json {
        self.json_at(self.root())
    }

    /// The word in ℕ* addressing `n` in the tree domain (root = ε).
    /// Positions follow the §3.1 convention: a node's children are numbered
    /// `0..k` in the stored order (key-symbol-sorted for objects, positional
    /// for arrays).
    pub fn domain_word(&self, n: NodeId) -> Vec<usize> {
        let mut w = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            w.push(self.slots[cur.index()] as usize);
            cur = p;
        }
        w.reverse();
        w
    }

    /// Human-readable path of `n` (e.g. `$."name"."first"` or `$."hobbies".1`).
    pub fn path_string(&self, n: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = n;
        while let Some(label) = self.edge_from_parent(cur) {
            parts.push(label.to_string());
            cur = self.parent(cur).expect("edge implies parent");
        }
        parts.reverse();
        let mut out = String::from("$");
        for p in parts {
            out.push('.');
            out.push_str(&p);
        }
        out
    }
}

impl fmt::Debug for JsonTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JsonTree({} nodes, height {}, {} symbols)",
            self.node_count(),
            self.height(),
            self.interner.len()
        )
    }
}

/// Iterator over `(EdgeLabel, NodeId)` children of one node.
pub struct ChildIter<'a> {
    tree: &'a JsonTree,
    kind: NodeKind,
    span: std::ops::Range<usize>,
    pos: usize,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = (EdgeLabel<'a>, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.span.start + self.pos;
        if i >= self.span.end {
            return None;
        }
        let out = match self.kind {
            NodeKind::Obj => (
                EdgeLabel::Key(self.tree.interner.resolve(self.tree.keys[i])),
                self.tree.children[i],
            ),
            NodeKind::Arr => (EdgeLabel::Index(self.pos), self.tree.children[i]),
            _ => return None,
        };
        self.pos += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.span.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn figure1() -> Json {
        parse(
            r#"{
                "name": {"first": "John", "last": "Doe"},
                "age": 32,
                "hobbies": ["fishing", "yoga"]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn build_figure1() {
        let t = JsonTree::build(&figure1());
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.height(), 2);
        let root = t.root();
        assert_eq!(t.kind(root), NodeKind::Obj);
        assert_eq!(t.child_count(root), 3);

        let name = t.child_by_key(root, "name").unwrap();
        assert_eq!(t.kind(name), NodeKind::Obj);
        let first = t.child_by_key(name, "first").unwrap();
        assert_eq!(t.str_value(first), Some("John"));

        let age = t.child_by_key(root, "age").unwrap();
        assert_eq!(t.num_value(age), Some(32));

        let hobbies = t.child_by_key(root, "hobbies").unwrap();
        assert_eq!(t.kind(hobbies), NodeKind::Arr);
        let yoga = t.child_by_index(hobbies, 1).unwrap();
        assert_eq!(t.str_value(yoga), Some("yoga"));
        assert_eq!(t.child_by_index(hobbies, 2), None);
    }

    #[test]
    fn interner_probes_and_symbol_lookups() {
        let t = JsonTree::build(&figure1());
        // Every key and string atom is interned; an absent key misses in
        // O(1) without touching nodes.
        assert_eq!(t.sym("no-such-key"), None);
        assert_eq!(t.child_by_key(t.root(), "no-such-key"), None);
        let name_sym = t.sym("name").expect("interned");
        assert_eq!(t.resolve(name_sym), "name");
        let name = t.child_by_sym(t.root(), name_sym).unwrap();
        assert_eq!(t.child_by_key(t.root(), "name"), Some(name));
        // String atoms share the table.
        let yoga = t
            .child_by_index(t.child_by_key(t.root(), "hobbies").unwrap(), 1)
            .unwrap();
        assert_eq!(t.resolve(t.str_sym(yoga).unwrap()), "yoga");
        // A string-leaf symbol is not a key of any object.
        assert_eq!(t.child_by_sym(t.root(), t.str_sym(yoga).unwrap()), None);
    }

    #[test]
    fn incoming_edge_symbols() {
        let t = JsonTree::build(&figure1());
        let name = t.child_by_key(t.root(), "name").unwrap();
        assert_eq!(t.incoming_key_sym(name), t.sym("name"));
        assert_eq!(t.incoming_index(name), None);
        let hobbies = t.child_by_key(t.root(), "hobbies").unwrap();
        let yoga = t.child_by_index(hobbies, 1).unwrap();
        assert_eq!(t.incoming_key_sym(yoga), None);
        assert_eq!(t.incoming_index(yoga), Some(1));
        assert_eq!(t.incoming_key_sym(t.root()), None);
        assert_eq!(t.incoming_index(t.root()), None);
    }

    #[test]
    fn obj_entries_are_sym_sorted_and_match_resolved_children() {
        let t = JsonTree::build(&parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap());
        let syms = t.obj_syms(t.root());
        assert_eq!(syms.len(), 3);
        assert!(syms.windows(2).all(|w| w[0] < w[1]), "sorted by Sym");
        let resolved: Vec<(&str, NodeId)> = t.obj_children(t.root()).collect();
        let entries: Vec<(Sym, NodeId)> = t.obj_entries(t.root()).collect();
        for ((k, c1), (s, c2)) in resolved.iter().zip(entries) {
            assert_eq!(*c1, c2);
            assert_eq!(*k, t.resolve(s));
        }
    }

    #[test]
    fn preorder_ids_nest() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            for (_, c) in t.children(n) {
                assert!(c > n, "child id must exceed parent id");
                assert_eq!(t.parent(c), Some(n));
            }
        }
    }

    #[test]
    fn subtree_is_contiguous_block() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            let lo = n.index();
            let hi = lo + t.subtree_size(n);
            // All and only ids in [lo, hi) are in the subtree of n.
            for m in t.node_ids() {
                let mut anc = Some(m);
                let mut inside = false;
                while let Some(a) = anc {
                    if a == n {
                        inside = true;
                        break;
                    }
                    anc = t.parent(a);
                }
                assert_eq!(inside, (lo..hi).contains(&m.index()));
            }
        }
    }

    #[test]
    fn json_at_reconstructs_each_subtree() {
        // §3.1: the five subtrees of the running example are the five JSON
        // values of the document (here: Figure 1 variant with 8 values).
        let doc = figure1();
        let t = JsonTree::build(&doc);
        assert_eq!(t.to_json(), doc);
        let name = t.child_by_key(t.root(), "name").unwrap();
        assert_eq!(
            t.json_at(name),
            parse(r#"{"first":"John","last":"Doe"}"#).unwrap()
        );
        let hobbies = t.child_by_key(t.root(), "hobbies").unwrap();
        assert_eq!(t.json_at(hobbies), parse(r#"["fishing","yoga"]"#).unwrap());
    }

    #[test]
    fn negative_indexing() {
        let t = JsonTree::build(&parse(r#"[10, 20, 30]"#).unwrap());
        let r = t.root();
        assert_eq!(
            t.num_value(t.child_by_signed_index(r, -1).unwrap()),
            Some(30)
        );
        assert_eq!(
            t.num_value(t.child_by_signed_index(r, -3).unwrap()),
            Some(10)
        );
        assert_eq!(t.child_by_signed_index(r, -4), None);
        assert_eq!(
            t.num_value(t.child_by_signed_index(r, 1).unwrap()),
            Some(20)
        );
    }

    #[test]
    fn edge_labels_and_paths() {
        let t = JsonTree::build(&figure1());
        let hobbies = t.child_by_key(t.root(), "hobbies").unwrap();
        let yoga = t.child_by_index(hobbies, 1).unwrap();
        assert_eq!(t.edge_from_parent(yoga), Some(EdgeLabel::Index(1)));
        assert_eq!(t.edge_from_parent(hobbies), Some(EdgeLabel::Key("hobbies")));
        assert_eq!(t.edge_from_parent(t.root()), None);
        assert_eq!(t.path_string(yoga), "$.\"hobbies\".1");
    }

    #[test]
    fn domain_words_are_prefix_closed() {
        let t = JsonTree::build(&figure1());
        let words: Vec<Vec<usize>> = t.node_ids().map(|n| t.domain_word(n)).collect();
        for w in &words {
            let mut prefix = w.clone();
            while prefix.pop().is_some() {
                assert!(words.contains(&prefix), "domain must be prefix-closed");
            }
        }
        // Sibling completeness: if n·i ∈ D then n·j ∈ D for all j < i.
        for w in &words {
            if let Some((&last, head)) = w.split_last() {
                for j in 0..last {
                    let mut sib = head.to_vec();
                    sib.push(j);
                    assert!(words.contains(&sib), "domain must contain smaller siblings");
                }
            }
        }
    }

    #[test]
    fn leaves_have_no_children() {
        let t = JsonTree::build(&figure1());
        for n in t.node_ids() {
            match t.kind(n) {
                NodeKind::Str | NodeKind::Int => {
                    assert_eq!(t.child_count(n), 0);
                    assert!(t.children(n).next().is_none());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-deep chain exercised iteratively end to end. Run on a big
        // stack only because the compiler-generated drop glue for nested
        // enums is recursive; all library operations are iterative.
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let mut j = Json::Num(0);
                for _ in 0..100_000 {
                    j = Json::object(vec![("c".into(), j)]).unwrap();
                }
                let t = JsonTree::build(&j);
                assert_eq!(t.node_count(), 100_001);
                assert_eq!(t.height(), 100_000);
                // One shared key: the interner collapses it to one symbol.
                assert_eq!(t.interner().len(), 1);
                assert_eq!(t.to_json(), j);
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn empty_containers() {
        let t = JsonTree::build(&parse(r#"{"e":{},"a":[]}"#).unwrap());
        let e = t.child_by_key(t.root(), "e").unwrap();
        let a = t.child_by_key(t.root(), "a").unwrap();
        assert_eq!(t.kind(e), NodeKind::Obj);
        assert_eq!(t.child_count(e), 0);
        assert_eq!(t.kind(a), NodeKind::Arr);
        assert_eq!(t.height_of(e), 0);
        assert_eq!(t.json_at(a), Json::array([]));
    }

    #[test]
    fn concat_subtrees_merges_shared_interner_parts() {
        // Three "segments" built through one shared interner, then merged:
        // values round-trip, symbols stay shared, nothing new is interned.
        let mut shared = crate::intern::Interner::new();
        let docs = [
            parse(r#"{"name": {"first": "Sue"}, "age": 28}"#).unwrap(),
            parse(r#"{"name": {"first": "John"}, "tags": ["a", "Sue"]}"#).unwrap(),
            parse(r#"[1, 2]"#).unwrap(),
        ];
        let segs: Vec<JsonTree> = docs
            .iter()
            .map(|d| JsonTree::build_into(d, &mut shared))
            .collect();
        let before = shared.len();
        let parts: Vec<(&JsonTree, NodeId)> = segs.iter().map(|t| (t, t.root())).collect();
        let merged = JsonTree::concat_subtrees(&parts, &mut shared);
        assert_eq!(shared.len(), before, "replay interns nothing new");
        assert_eq!(merged.kind(merged.root()), NodeKind::Arr);
        assert_eq!(merged.child_count(merged.root()), 3);
        for (i, d) in docs.iter().enumerate() {
            let c = merged.child_by_index(merged.root(), i).unwrap();
            assert_eq!(&merged.json_at(c), d);
        }
        // Symbols are the shared assignment: a key interned by segment 0
        // carries the same Sym in the merged tree.
        assert_eq!(merged.sym("name"), segs[0].sym("name"));
        // And the merged tree's invariants hold (sorted spans, pre-order).
        for n in merged.node_ids() {
            for (_, c) in merged.children(n) {
                assert!(c > n);
                assert_eq!(merged.parent(c), Some(n));
            }
            let syms = merged.obj_syms(n);
            assert!(syms.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn concat_subtrees_of_nothing_is_an_empty_array() {
        let mut shared = crate::intern::Interner::new();
        let merged = JsonTree::concat_subtrees(&[], &mut shared);
        assert_eq!(merged.to_json(), Json::array([]));
    }

    #[test]
    fn concat_subtrees_can_lift_inner_nodes() {
        // Parts need not be roots: any node of a shared-interner tree works.
        let mut shared = crate::intern::Interner::new();
        let doc = parse(r#"{"a": {"x": 1}, "b": [7, 2]}"#).unwrap();
        let t = JsonTree::build_into(&doc, &mut shared);
        let a = t.child_by_key(t.root(), "a").unwrap();
        let b = t.child_by_key(t.root(), "b").unwrap();
        let merged = JsonTree::concat_subtrees(&[(&t, b), (&t, a)], &mut shared);
        assert_eq!(merged.to_json(), parse(r#"[[7, 2], {"x": 1}]"#).unwrap());
    }

    #[test]
    fn child_iter_size_hint() {
        let t = JsonTree::build(&parse(r#"[1,2,3,4]"#).unwrap());
        let it = t.children(t.root());
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(t.children(t.root()).count(), 4);
    }
}
