//! # jsondata — JSON values and the formal JSON tree model
//!
//! This crate implements the data-model layer of Bourhis, Reutter, Suárez &
//! Vrgoč, *"JSON: data model, query languages and schema specification"*
//! (PODS 2017). It provides:
//!
//! * [`Json`] — a JSON value restricted to the paper's §2 fragment:
//!   objects (with pairwise-distinct keys), arrays, strings, and natural
//!   numbers. Object equality is **unordered**, as the paper requires.
//! * A from-scratch [`parse`](parse()) / [`serialize`](mod@serialize) pair
//!   for the textual format, with precise error positions — plus the fused
//!   [`parse_to_tree`](parse_to_tree()) family, which lexes, interns and
//!   assembles a [`JsonTree`] in one pass with no intermediate [`Json`]
//!   (identical trees and identical errors to the two-pass route, proven
//!   differentially).
//! * [`JsonTree`] — the paper's §3 *JSON tree*: an arena-backed tree whose
//!   nodes are partitioned into `Obj`/`Arr`/`Str`/`Int`, with a key-labelled
//!   object-child relation and an index-labelled array-child relation.
//!   Storage is CSR-style (flattened child arrays addressed by offset
//!   spans), and every object key and string atom is interned into a
//!   per-tree symbol table.
//! * [`intern`] — the symbol layer: [`Sym`] (a stable `u32` per distinct
//!   string) and [`Interner`]. Edge-label tests across the logic engines
//!   compare symbols, never strings; `child_by_key` is an `O(1)` interner
//!   probe plus a binary search over `u32`s, and a probe miss answers
//!   without touching any node.
//! * [`canon`] — canonical subtree labels: every node receives an integer
//!   class id such that two nodes have equal ids iff their subtrees are equal
//!   JSON values. This is the "online subtree equality" refinement that the
//!   paper's Proposition 1 proof relies on.
//! * [`domain`] — the formal tree-domain presentation
//!   `J = (D, Obj, Arr, Str, Int, A, O, val)` with validation of the five
//!   well-formedness conditions of Definition §3.1.
//! * [`nav`] — JSON navigation instructions `J[key]` / `J[i]` (§2).
//! * [`mod@pointer`] — RFC 6901 JSON Pointers (used by JSON Schema `$ref`).
//! * [`gen`] — seeded random document generators used by tests and the
//!   benchmark harness.
//!
//! ## Quick example
//!
//! ```
//! use jsondata::{parse, JsonTree};
//!
//! // The paper's Figure 1 document.
//! let doc = parse(r#"{
//!     "name": { "first": "John", "last": "Doe" },
//!     "age": 32,
//!     "hobbies": ["fishing", "yoga"]
//! }"#).unwrap();
//!
//! let tree = JsonTree::build(&doc);
//! let root = tree.root();
//! let name = tree.child_by_key(root, "name").unwrap();
//! let first = tree.child_by_key(name, "first").unwrap();
//! assert_eq!(tree.str_value(first), Some("John"));
//!
//! // Every subtree is again a JSON value (compositionality, §3.1).
//! assert_eq!(tree.json_at(name).to_string(), r#"{"first":"John","last":"Doe"}"#);
//! ```

pub mod canon;
pub mod domain;
pub mod error;
pub mod fxhash;
pub mod gen;
pub mod intern;
pub mod nav;
pub mod parse;
pub mod pointer;
pub mod serialize;
pub mod tree;
pub mod value;

pub use canon::CanonTable;
pub use error::{JsonError, ParseError, ParseErrorKind, Position};
pub use intern::{Interner, Sym};
pub use nav::{NavPath, NavStep};
pub use parse::{
    parse, parse_to_tree, parse_to_tree_into, parse_to_tree_with_limits, parse_with_limits,
    ParseLimits,
};
pub use pointer::JsonPointer;
pub use tree::{EdgeLabel, JsonTree, NodeId, NodeKind};
pub use value::{Json, ObjectBuilder};
