//! Pins the `JPAR_THREADS` / `JPAR_DISPATCH` environment contract of
//! [`Pool::auto`], so the persistent-pool rewrite (or any future one)
//! cannot silently change env semantics:
//!
//! * a positive integer is taken verbatim;
//! * `"0"`, unparseable garbage, and values too large for `usize` all
//!   fall back to the machine's parallelism — never an error, never a
//!   zero-thread pool;
//! * whatever happens, the resulting thread count is ≥ 1.
//!
//! Environment variables are process-global, so every case runs inside
//! one `#[test]` (cargo runs separate `#[test]` fns concurrently).

use jpar::{Dispatch, Pool, DISPATCH_ENV, THREADS_ENV};

/// Sets `var` for the duration of `f`, restoring the previous state
/// afterwards even if an assertion fails.
fn with_env<T>(var: &str, value: Option<&str>, f: impl FnOnce() -> T) -> T {
    struct Restore<'a>(&'a str, Option<String>);
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            match &self.1 {
                Some(v) => std::env::set_var(self.0, v),
                None => std::env::remove_var(self.0),
            }
        }
    }
    let _restore = Restore(var, std::env::var(var).ok());
    match value {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    f()
}

#[test]
fn jpar_threads_env_edge_cases_clamp_to_at_least_one() {
    let fallback = with_env(THREADS_ENV, None, || Pool::auto().threads());
    assert!(fallback >= 1, "unset env must yield a usable pool");

    // A positive integer is honoured verbatim.
    assert_eq!(
        with_env(THREADS_ENV, Some("3"), || Pool::auto().threads()),
        3
    );
    assert_eq!(
        with_env(THREADS_ENV, Some("1"), || Pool::auto().threads()),
        1
    );

    // An absurdly large — but parseable — count is honoured too: the
    // pool clamps its *workers* per call (`threads.min(n_chunks)`, and
    // the park core caps helper threads), so a huge setting cannot
    // spawn a huge number of threads.
    let huge = with_env(THREADS_ENV, Some("1048576"), Pool::auto);
    assert_eq!(huge.threads(), 1_048_576);
    let out = huge.map_chunks(1000, 10, |r| r.len());
    assert_eq!(out.iter().sum::<usize>(), 1000);

    // "0" is not a usable thread count: fall back, never zero.
    assert_eq!(
        with_env(THREADS_ENV, Some("0"), || Pool::auto().threads()),
        fallback
    );

    // Garbage falls back.
    for garbage in ["banana", "", " 4", "4 ", "-2", "3.5", "0x10"] {
        assert_eq!(
            with_env(THREADS_ENV, Some(garbage), || Pool::auto().threads()),
            fallback,
            "garbage value {garbage:?} must fall back"
        );
    }

    // Too large for usize: parse fails, falls back (not a panic, not 0).
    assert_eq!(
        with_env(THREADS_ENV, Some("18446744073709551616"), || {
            Pool::auto().threads()
        }),
        fallback
    );
}

#[test]
fn jpar_dispatch_env_selects_strategy() {
    let default = with_env(DISPATCH_ENV, None, || Pool::auto().dispatch());
    assert_eq!(default, Dispatch::Park, "persistent pool is the default");
    assert_eq!(
        with_env(DISPATCH_ENV, Some("spawn"), || Pool::auto().dispatch()),
        Dispatch::Spawn
    );
    assert_eq!(
        with_env(DISPATCH_ENV, Some("SPAWN"), || Pool::auto().dispatch()),
        Dispatch::Spawn
    );
    assert_eq!(
        with_env(DISPATCH_ENV, Some("park"), || Pool::auto().dispatch()),
        Dispatch::Park
    );
    // Unknown values keep the default rather than erroring.
    assert_eq!(
        with_env(DISPATCH_ENV, Some("fibers"), || Pool::auto().dispatch()),
        Dispatch::Park
    );
}
