//! Evaluation engines for JNL.
//!
//! Four engines implement the semantics at the complexity points the paper
//! identifies:
//!
//! | Engine | Fragment | Bound (paper) | Where |
//! |---|---|---|---|
//! | [`naive`] | full logic | — (reference oracle) | differential tests |
//! | [`linear`] | deterministic JNL | `O(\|J\|·\|φ\|)` (Prop 1) | E1 |
//! | [`pdl`] | + non-det, recursion; no `EQ(α,β)` | `O(\|J\|·\|φ\|)` (Prop 3) | E3 |
//! | [`cubic`] | full logic incl. `EQ(α,β)` | `O(\|J\|³·\|φ\|)` (Prop 3) | E3 |
//!
//! [`evaluate`] dispatches to the cheapest engine that supports the
//! formula's fragment. All engines share the [`EvalContext`] (tree +
//! canonical subtree labels + per-regex edge-match caches).

pub mod cubic;
pub mod linear;
pub mod naive;
pub mod pathnfa;
pub mod pdl;

use jsondata::{CanonTable, Json, JsonTree, NodeId, Sym};
use relex::{KeyMatchMemo, Regex, RegexMemoTable};

use crate::ast::Unary;

/// Errors raised when a formula falls outside an engine's fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The linear engine was given a non-deterministic construct.
    NotDeterministic(&'static str),
    /// The PDL engine was given `EQ(α, β)` (use [`cubic`]).
    EqPairUnsupported,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::NotDeterministic(what) => {
                write!(
                    f,
                    "formula uses {what}, outside the deterministic fragment (Prop 1)"
                )
            }
            EvalError::EqPairUnsupported => write!(
                f,
                "EQ(α, β) requires the cubic engine (Prop 3 excludes it from the linear case)"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Shared evaluation state for one tree: canonical labels plus the
/// per-`(regex, symbol)` edge-match memo of the Proposition 3 proof's
/// preprocessing step.
///
/// Edge keys live in the tree itself as interned [`Sym`]s — nothing is
/// cloned here — and each regex is evaluated at most once per **distinct**
/// key symbol (`O(distinct keys)` runs) instead of once per node, with every
/// later test a `u32`-indexed table load.
pub struct EvalContext<'t> {
    /// The document tree.
    pub tree: &'t JsonTree,
    /// Canonical subtree labels (the online-equality refinement of Prop 1).
    pub canon: CanonTable,
    /// `regex → per-symbol match memo`.
    regex_memos: RegexMemoTable,
}

impl<'t> EvalContext<'t> {
    /// Builds the context (one `O(|J|)` pass for the canonical labels; the
    /// regex memos fill lazily).
    pub fn new(tree: &'t JsonTree) -> EvalContext<'t> {
        EvalContext {
            tree,
            canon: CanonTable::build(tree),
            regex_memos: RegexMemoTable::new(),
        }
    }

    /// The key on the edge into `n`, if `n` is an object child (resolved
    /// string; hot paths should use [`JsonTree::incoming_key_sym`] and
    /// compare symbols).
    pub fn incoming_key(&self, n: NodeId) -> Option<&'t str> {
        self.tree.incoming_key_sym(n).map(|s| self.tree.resolve(s))
    }

    /// The position on the edge into `n`, if `n` is an array child.
    pub fn incoming_index(&self, n: NodeId) -> Option<u64> {
        self.tree.incoming_index(n)
    }

    /// Whether the string behind `sym` (an edge key or string atom of this
    /// tree) matches `e`, memoised per `(regex, symbol)`.
    pub fn key_matches(&mut self, e: &Regex, sym: Sym) -> bool {
        self.regex_memos
            .memo(e)
            .matches_str(sym.index(), self.tree.resolve(sym))
    }

    /// The per-symbol memo for `e` — fetch once before a loop over many
    /// edges so the table probe (which hashes the regex AST) runs once, not
    /// per edge.
    pub fn memo_for(&mut self, e: &Regex) -> &mut KeyMatchMemo {
        self.regex_memos.memo(e)
    }

    /// Whether the edge into `n` is an object edge whose key matches `e`.
    pub fn edge_matches(&mut self, e: &Regex, n: NodeId) -> bool {
        match self.tree.incoming_key_sym(n) {
            Some(sym) => self.key_matches(e, sym),
            None => false,
        }
    }

    /// The canonical class of an external document within this tree, if the
    /// document occurs as a subtree.
    pub fn class_of_doc(&self, doc: &Json) -> Option<u32> {
        self.canon.class_of_json(self.tree, doc)
    }
}

/// The result of an evaluation: the set of nodes satisfying the formula,
/// as a membership vector indexed by `NodeId::index()`.
pub type NodeSet = Vec<bool>;

/// Evaluates `φ` over `tree` with the best applicable engine:
/// deterministic → [`linear`], no `EQ(α,β)` → [`pdl`], otherwise [`cubic`].
pub fn evaluate(tree: &JsonTree, phi: &Unary) -> NodeSet {
    let frag = phi.fragment();
    if frag.is_deterministic() {
        linear::eval(tree, phi).expect("fragment checked deterministic")
    } else if !frag.eq_pair {
        pdl::eval(tree, phi).expect("fragment checked EQ-pair-free")
    } else {
        cubic::eval(tree, phi)
    }
}

/// Convenience: does the root satisfy `φ`?
pub fn check_root(tree: &JsonTree, phi: &Unary) -> bool {
    evaluate(tree, phi)[tree.root().index()]
}

/// Convenience: the nodes satisfying `φ`, as ids.
pub fn selected_nodes(tree: &JsonTree, phi: &Unary) -> Vec<NodeId> {
    evaluate(tree, phi)
        .iter()
        .enumerate()
        .filter(|&(_i, &b)| b)
        .map(|(i, &_b)| NodeId::from_index(i))
        .collect()
}
