//! # jguard — per-query resource governance
//!
//! A multi-tenant serving layer cannot let one query take the process
//! down (a panicking worker), starve its neighbours (an adversarial
//! filter that runs forever), or exhaust memory (an unbounded `$push`
//! group). This crate is the workspace-wide answer: a cheap, clonable
//! [`QueryCtx`] carrying a deadline, a cancellation flag, and byte/row
//! budgets, threaded through every long-running path — `jpar` pool
//! dispatch, per-node JNL evaluation, `jagg` stage loops, and the
//! `mongofind` find/aggregate entry points — plus the structured
//! [`QueryError`] those paths return instead of panicking or spinning.
//!
//! ## Error taxonomy
//!
//! | Variant | Raised when |
//! |---|---|
//! | [`QueryError::Deadline`] | the context's deadline passed during a poll |
//! | [`QueryError::BudgetExceeded`] | a byte or row charge overdrew its budget |
//! | [`QueryError::Cancelled`] | [`QueryCtx::cancel`] was called on a clone |
//! | [`QueryError::WorkerPanicked`] | a pool worker panicked; the panic was contained |
//! | [`QueryError::ParseLimit`] | ingestion rejected a document via [`jsondata::ParseLimits`] |
//!
//! ## Poll granularity and overhead contract
//!
//! Deadlines and cancellation are observed *cooperatively*: workers
//! check the context between chunks, and per-row loops poll through a
//! [`Poller`], which performs the real check (an `Instant::now()` and
//! two atomic loads) only once every [`POLL_STRIDE`] ticks. A tick on
//! an unlimited context is a single branch on an `Option` discriminant.
//! The contract, enforced by `harness s7`, is that an expired or
//! cancelled query returns its error within a bounded grace window
//! (one chunk plus one poll stride of work) and that the uncontended
//! poll cost on the parallel workloads stays within 2%.
//!
//! Budgets are *charged*, not polled: producers call
//! [`QueryCtx::charge_bytes`] / [`QueryCtx::charge_rows`] as they
//! materialise output, and the first charge that overdraws returns
//! [`QueryError::BudgetExceeded`]. Charging on an unlimited context is
//! free (no traversal is done to size a value unless a byte budget is
//! actually present — see [`QueryCtx::charge_json`]).
//!
//! ## Panic-free guarantees
//!
//! `jpar`'s fallible entry points (`try_map`, `try_map_chunks`,
//! `try_flat_map_chunks`) contain worker panics with `catch_unwind`
//! and convert them to [`QueryError::WorkerPanicked`], joining the
//! remaining workers; the pool and any shared immutable state stay
//! reusable. Every `mongofind`/`jagg` `*_with_ctx` API inherits this:
//! they return `Err(WorkerPanicked)` rather than unwinding, as long as
//! the panic originates inside the dispatched closure. The legacy
//! (ctx-free) APIs re-raise the contained panic on the calling thread
//! to preserve their documented behaviour.
//!
//! ## Observability
//!
//! A [`jtrace::QueryMetrics`] sink can ride the context
//! ([`QueryCtx::with_metrics`]): the governance primitives record into it
//! (polls, bytes charged, rows emitted) and every `*_with_ctx` query path
//! in the workspace records its own counters and spans through
//! [`QueryCtx::record`] / [`QueryCtx::span_open`]. Without a sink each
//! record site costs a single branch, the same null-cost contract as the
//! unlimited context (gated by `harness s10`). See `docs/observability.md`.
//!
//! ## Fault injection
//!
//! [`Fault`] rides the context: the s7 harness plants
//! `Fault::PanicAtPoll(k)` or `Fault::SleepAtPoll` to prove, from the
//! outside, that panics are contained and deadlines are enforced at
//! every poll site. Production contexts leave it at `Fault::None`,
//! which skips the poll counter entirely.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jsondata::{Json, ParseError};
use jtrace::{Counter, QueryMetrics, SpanKind};

/// How many [`Poller::tick`]s elapse between two real context checks.
///
/// Per-row loops tick once per item; a stride of 1024 keeps the
/// amortised cost of `Instant::now()` far below the per-item work while
/// bounding the reaction latency to ~1024 items of compute.
pub const POLL_STRIDE: u32 = 1024;

/// Which budget a [`QueryError::BudgetExceeded`] overdrew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The approximate-byte budget charged by materialisation paths.
    Bytes,
    /// The result-row budget charged by find/unwind/group outputs.
    Rows,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Bytes => write!(f, "byte"),
            Resource::Rows => write!(f, "row"),
        }
    }
}

/// A structured, per-query failure. See the crate docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The context's deadline passed while the query was running.
    Deadline,
    /// A byte or row charge overdrew the context's budget.
    BudgetExceeded {
        /// Which budget was overdrawn.
        resource: Resource,
    },
    /// [`QueryCtx::cancel`] was observed by a poll.
    Cancelled,
    /// A pool worker panicked; the panic was contained at the pool
    /// boundary instead of unwinding through the caller.
    WorkerPanicked {
        /// The item range of the chunk whose closure panicked
        /// (empty when the panic happened outside any chunk).
        chunk: Range<usize>,
        /// The panic payload, when it was a string (the common case);
        /// a placeholder otherwise.
        payload: String,
    },
    /// Ingestion rejected a document against its [`jsondata::ParseLimits`].
    ParseLimit(ParseError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Deadline => write!(f, "query deadline exceeded"),
            QueryError::BudgetExceeded { resource } => {
                write!(f, "query {resource} budget exceeded")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::WorkerPanicked { chunk, payload } => write!(
                f,
                "worker panicked on chunk {}..{}: {payload}",
                chunk.start, chunk.end
            ),
            QueryError::ParseLimit(e) => write!(f, "document rejected at ingestion: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> QueryError {
        QueryError::ParseLimit(e)
    }
}

/// A fault planted on a context by the s7 harness and the containment
/// tests. Triggers on the Nth real poll (1-based, counted across all
/// clones of the context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault — the poll counter is not even incremented.
    #[default]
    None,
    /// Panic inside the Nth poll, wherever it happens to run.
    PanicAtPoll(u64),
    /// Sleep `millis` inside the Nth poll — a synthetic slow node.
    SleepAtPoll {
        /// Which poll (1-based) stalls.
        at: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// The message injected panics carry, so tests can tell them from real bugs.
pub const INJECTED_PANIC_MSG: &str = "jguard: injected fault panic";

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    bytes_left: Option<AtomicI64>,
    rows_left: Option<AtomicI64>,
    polls: AtomicU64,
    fault: Fault,
    metrics: Option<Arc<QueryMetrics>>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            deadline: None,
            cancelled: AtomicBool::new(false),
            bytes_left: None,
            rows_left: None,
            polls: AtomicU64::new(0),
            fault: Fault::None,
            metrics: None,
        }
    }
}

/// A cheap, clonable per-query governance handle.
///
/// [`QueryCtx::unlimited`] carries no state at all — checks and charges
/// on it compile down to one branch, which is what the legacy
/// (ctx-free) APIs delegate with. Any builder method allocates the
/// shared state; clones of a built context observe the same
/// cancellation flag, budgets, and poll counter.
///
/// Builder methods (`with_*`) must be applied **before** the context is
/// cloned — they mutate through [`Arc::get_mut`] and panic if clones
/// already exist.
#[derive(Debug, Clone, Default)]
pub struct QueryCtx {
    inner: Option<Arc<Inner>>,
}

impl QueryCtx {
    /// A context with no limits and no shared state. Checks are free;
    /// [`QueryCtx::cancel`] on it is a no-op.
    pub fn unlimited() -> QueryCtx {
        QueryCtx { inner: None }
    }

    /// A context with allocated shared state but no limits — cancellable
    /// from another thread via a clone, otherwise unconstrained.
    pub fn new() -> QueryCtx {
        QueryCtx {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    fn make_mut(&mut self) -> &mut Inner {
        let arc = self.inner.get_or_insert_with(|| Arc::new(Inner::default()));
        Arc::get_mut(arc).expect("QueryCtx builder methods must run before the ctx is cloned")
    }

    /// Sets the deadline to `now + timeout`.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryCtx {
        self.make_mut().deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryCtx {
        self.make_mut().deadline = Some(deadline);
        self
    }

    /// Caps the approximate bytes the query may materialise.
    pub fn with_byte_budget(mut self, bytes: u64) -> QueryCtx {
        self.make_mut().bytes_left = Some(AtomicI64::new(i64::try_from(bytes).unwrap_or(i64::MAX)));
        self
    }

    /// Caps the result rows the query may produce.
    pub fn with_row_budget(mut self, rows: u64) -> QueryCtx {
        self.make_mut().rows_left = Some(AtomicI64::new(i64::try_from(rows).unwrap_or(i64::MAX)));
        self
    }

    /// Plants an injected fault (testing/harness only).
    pub fn with_fault(mut self, fault: Fault) -> QueryCtx {
        self.make_mut().fault = fault;
        self
    }

    /// Attaches a [`jtrace::QueryMetrics`] sink: every `*_with_ctx` path
    /// the context flows through records its counters (and spans, if the
    /// sink carries a ring) into it. Like the budgets, the sink is shared
    /// by all clones; without one, every record site costs one branch.
    pub fn with_metrics(mut self, sink: Arc<QueryMetrics>) -> QueryCtx {
        self.make_mut().metrics = Some(sink);
        self
    }

    /// The attached metrics sink, if any.
    pub fn metrics(&self) -> Option<&Arc<QueryMetrics>> {
        self.inner.as_deref().and_then(|i| i.metrics.as_ref())
    }

    /// Adds `n` to `counter` on the attached sink (no-op without one).
    #[inline]
    pub fn record(&self, counter: Counter, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.add(counter, n);
            }
        }
    }

    /// Appends a contained-panic audit event to the attached sink
    /// (no-op without one). `chunk` is `usize::MAX` when the panic was
    /// contained outside any identifiable chunk.
    pub fn record_panic(&self, chunk: usize, payload: &str) {
        if let Some(m) = self.metrics() {
            m.record_panic(chunk, payload);
        }
    }

    /// Records a span-open event on the attached sink's ring (no-op
    /// without a sink or without a ring).
    #[inline]
    pub fn span_open(&self, kind: SpanKind, arg: u32) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.span_open(kind, arg);
            }
        }
    }

    /// Records a span-close event (see [`QueryCtx::span_open`]).
    #[inline]
    pub fn span_close(&self, kind: SpanKind, arg: u32) {
        if let Some(inner) = self.inner.as_deref() {
            if let Some(m) = &inner.metrics {
                m.span_close(kind, arg);
            }
        }
    }

    /// Whether this is the zero-state unlimited context.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Requests cancellation; every clone observes it at its next poll.
    /// A no-op on [`QueryCtx::unlimited`] (there is no shared flag).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a byte budget is present (lets producers skip sizing
    /// work entirely when it is not).
    #[inline]
    pub fn has_byte_budget(&self) -> bool {
        self.inner
            .as_deref()
            .is_some_and(|i| i.bytes_left.is_some())
    }

    /// The full check: fault hook, cancellation flag, deadline.
    /// Budgets are charged separately, not polled.
    pub fn check(&self) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::Polls, 1);
        }
        if inner.fault != Fault::None {
            let n = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
            match inner.fault {
                Fault::PanicAtPoll(at) if n == at => panic!("{INJECTED_PANIC_MSG} (poll {at})"),
                Fault::SleepAtPoll { at, millis } if n == at => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(QueryError::Cancelled);
        }
        if let Some(d) = inner.deadline {
            if Instant::now() >= d {
                return Err(QueryError::Deadline);
            }
        }
        Ok(())
    }

    /// Charges `n` approximate bytes against the budget, if one is set.
    #[inline]
    pub fn charge_bytes(&self, n: u64) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::BytesCharged, n);
        }
        let Some(left) = &inner.bytes_left else {
            return Ok(());
        };
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        if left.fetch_sub(n, Ordering::Relaxed) < n {
            return Err(QueryError::BudgetExceeded {
                resource: Resource::Bytes,
            });
        }
        Ok(())
    }

    /// Charges `n` result rows against the budget, if one is set.
    #[inline]
    pub fn charge_rows(&self, n: u64) -> Result<(), QueryError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        if let Some(m) = &inner.metrics {
            m.add(Counter::RowsEmitted, n);
        }
        let Some(left) = &inner.rows_left else {
            return Ok(());
        };
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        if left.fetch_sub(n, Ordering::Relaxed) < n {
            return Err(QueryError::BudgetExceeded {
                resource: Resource::Rows,
            });
        }
        Ok(())
    }

    /// Charges a materialised value's approximate size — but only
    /// traverses the value when a byte budget is actually present, so
    /// unbudgeted queries pay nothing for the call.
    #[inline]
    pub fn charge_json(&self, value: &Json) -> Result<(), QueryError> {
        if !self.has_byte_budget() {
            return Ok(());
        }
        self.charge_bytes(approx_json_bytes(value))
    }

    /// A per-loop poller bound to this context.
    pub fn poller(&self) -> Poller<'_> {
        Poller::new(self)
    }
}

/// Amortises [`QueryCtx::check`] for per-item loops: the real check
/// runs once every [`POLL_STRIDE`] ticks; the other ticks are a counter
/// decrement. On an unlimited context a tick is a single branch.
pub struct Poller<'c> {
    ctx: &'c QueryCtx,
    left: u32,
}

impl<'c> Poller<'c> {
    /// A fresh poller; its first [`Poller::tick`] performs a real check
    /// so an already-expired context fails before any work happens.
    pub fn new(ctx: &'c QueryCtx) -> Poller<'c> {
        Poller { ctx, left: 0 }
    }

    /// Call once per item. Cheap between strides; see [`POLL_STRIDE`].
    #[inline]
    pub fn tick(&mut self) -> Result<(), QueryError> {
        if self.ctx.inner.is_none() {
            return Ok(());
        }
        if self.left > 0 {
            self.left -= 1;
            return Ok(());
        }
        self.left = POLL_STRIDE;
        self.ctx.check()
    }
}

/// A cheap structural size estimate used for byte-budget charging:
/// container/string headers plus payload lengths. It deliberately
/// over-approximates small values (every node costs at least a
/// pointer-ish constant) so budgets bound allocation, not undershoot it.
pub fn approx_json_bytes(value: &Json) -> u64 {
    match value {
        Json::Num(_) => 16,
        Json::Str(s) => 24 + s.len() as u64,
        Json::Array(items) => 24 + items.iter().map(approx_json_bytes).sum::<u64>(),
        Json::Object(o) => {
            let mut total = 24u64;
            for (k, v) in o.iter() {
                total += 24 + k.len() as u64 + approx_json_bytes(v);
            }
            total
        }
    }
}

/// Runs `f` with the global panic hook silenced, restoring it after.
/// Used by the fault-injection harness and the containment tests so a
/// thousand *intentional* panics do not flood stderr. The hook is
/// process-global: concurrent tests may briefly lose their panic
/// message, but the unwind (and thus the test failure) still happens.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_free_and_infallible() {
        let ctx = QueryCtx::unlimited();
        assert!(ctx.is_unlimited());
        assert_eq!(ctx.check(), Ok(()));
        assert_eq!(ctx.charge_bytes(u64::MAX), Ok(()));
        assert_eq!(ctx.charge_rows(u64::MAX), Ok(()));
        ctx.cancel(); // no-op
        assert_eq!(ctx.check(), Ok(()));
    }

    #[test]
    fn cancellation_is_seen_by_clones() {
        let ctx = QueryCtx::new();
        let worker = ctx.clone();
        assert_eq!(worker.check(), Ok(()));
        ctx.cancel();
        assert_eq!(worker.check(), Err(QueryError::Cancelled));
    }

    #[test]
    fn expired_deadline_fails_check() {
        let ctx = QueryCtx::unlimited().with_timeout(Duration::from_secs(0));
        assert_eq!(ctx.check(), Err(QueryError::Deadline));
        let far = QueryCtx::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
    }

    #[test]
    fn byte_budget_overdraws_once() {
        let ctx = QueryCtx::unlimited().with_byte_budget(100);
        assert_eq!(ctx.charge_bytes(60), Ok(()));
        assert_eq!(
            ctx.charge_bytes(60),
            Err(QueryError::BudgetExceeded {
                resource: Resource::Bytes
            })
        );
        // Stays overdrawn.
        assert!(ctx.charge_bytes(1).is_err());
    }

    #[test]
    fn row_budget_counts_rows() {
        let ctx = QueryCtx::unlimited().with_row_budget(3);
        assert_eq!(ctx.charge_rows(2), Ok(()));
        assert_eq!(ctx.charge_rows(1), Ok(()));
        assert_eq!(
            ctx.charge_rows(1),
            Err(QueryError::BudgetExceeded {
                resource: Resource::Rows
            })
        );
    }

    #[test]
    fn poller_strides_and_reacts() {
        let ctx = QueryCtx::new();
        let mut p = ctx.poller();
        // First tick checks (ok), the next POLL_STRIDE ticks are free.
        assert_eq!(p.tick(), Ok(()));
        ctx.cancel();
        let mut seen = None;
        for i in 0..=POLL_STRIDE {
            if p.tick().is_err() {
                seen = Some(i);
                break;
            }
        }
        assert_eq!(seen, Some(POLL_STRIDE), "reacts exactly at the stride");
    }

    #[test]
    fn fault_panics_at_requested_poll() {
        let ctx = QueryCtx::unlimited().with_fault(Fault::PanicAtPoll(3));
        assert_eq!(ctx.check(), Ok(()));
        assert_eq!(ctx.check(), Ok(()));
        let r = with_quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.check()))
        });
        assert!(r.is_err(), "third poll panics");
        assert_eq!(ctx.check(), Ok(()), "later polls are clean");
    }

    #[test]
    fn metrics_sink_records_polls_and_charges() {
        let sink = Arc::new(QueryMetrics::new());
        let ctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
        assert_eq!(ctx.check(), Ok(()));
        // Charges record even when no budget is configured.
        assert_eq!(ctx.charge_rows(5), Ok(()));
        assert_eq!(ctx.charge_bytes(100), Ok(()));
        ctx.record(Counter::DocsScanned, 3);
        ctx.record_panic(7, "boom");
        assert_eq!(sink.get(Counter::Polls), 1);
        assert_eq!(sink.get(Counter::RowsEmitted), 5);
        assert_eq!(sink.get(Counter::BytesCharged), 100);
        assert_eq!(sink.get(Counter::DocsScanned), 3);
        assert_eq!(sink.get(Counter::WorkerPanics), 1);
        assert_eq!(sink.panic_events()[0].chunk, 7);
        assert!(ctx.metrics().is_some());

        // Spanless and sinkless paths are no-ops, not errors.
        ctx.span_open(SpanKind::Plan, 0);
        let bare = QueryCtx::unlimited();
        bare.record(Counter::DocsScanned, 1);
        bare.record_panic(0, "ignored");
        bare.span_close(SpanKind::Plan, 0);
        assert!(bare.metrics().is_none());
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = Json::Num(1);
        let big = Json::Array((0..100).map(|_| Json::str("hello world")).collect());
        assert!(approx_json_bytes(&big) > approx_json_bytes(&small));
        assert!(approx_json_bytes(&big) >= 100 * 11);
    }

    #[test]
    fn display_is_stable() {
        let e = QueryError::WorkerPanicked {
            chunk: 3..7,
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "worker panicked on chunk 3..7: boom");
        assert_eq!(QueryError::Deadline.to_string(), "query deadline exceeded");
        assert_eq!(
            QueryError::BudgetExceeded {
                resource: Resource::Rows
            }
            .to_string(),
            "query row budget exceeded"
        );
    }
}
