//! Regular-expression abstract syntax.

use std::fmt;

use crate::classes::CharClass;
use crate::dfa::Dfa;
use crate::nfa::{CompiledRegex, Nfa};
use crate::parse::RegexError;

/// A regular expression over the unicode alphabet Σ.
///
/// This is a plain syntax tree: cheap to clone, hash and compare, so the
/// logic ASTs embed it directly. Compile with [`Regex::compile`] (NFA
/// membership) or [`Regex::to_dfa`] (language algebra).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the language containing only the empty word.
    Epsilon,
    /// One character drawn from a class.
    Class(CharClass),
    /// Concatenation `r₁ r₂ … rₙ`.
    Concat(Vec<Regex>),
    /// Alternation `r₁ | r₂ | … | rₙ`.
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// Parses the textual syntax (see [`crate::parse`] for the grammar).
    pub fn parse(src: &str) -> Result<Regex, RegexError> {
        crate::parse::parse(src)
    }

    /// The expression matching exactly the word `w`.
    pub fn literal(w: &str) -> Regex {
        match w.chars().count() {
            0 => Regex::Epsilon,
            1 => Regex::Class(CharClass::single(w.chars().next().expect("one char"))),
            _ => Regex::Concat(
                w.chars()
                    .map(|c| Regex::Class(CharClass::single(c)))
                    .collect(),
            ),
        }
    }

    /// `Σ*` — the universal language (the paper's `X_{Σ*}` axis).
    pub fn sigma_star() -> Regex {
        Regex::Star(Box::new(Regex::Class(CharClass::any())))
    }

    /// `r+` as derived syntax `r r*`.
    pub fn plus(r: Regex) -> Regex {
        Regex::Concat(vec![r.clone(), Regex::Star(Box::new(r))])
    }

    /// `r?` as derived syntax `r | ε`.
    pub fn opt(r: Regex) -> Regex {
        Regex::Alt(vec![r, Regex::Epsilon])
    }

    /// Alternation of the given branches (normalising the trivial cases).
    pub fn alt(branches: Vec<Regex>) -> Regex {
        match branches.len() {
            0 => Regex::Empty,
            1 => branches.into_iter().next().expect("one branch"),
            _ => Regex::Alt(branches),
        }
    }

    /// Concatenation of the given parts (normalising the trivial cases).
    pub fn concat(parts: Vec<Regex>) -> Regex {
        match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.into_iter().next().expect("one part"),
            _ => Regex::Concat(parts),
        }
    }

    /// Syntactic emptiness: `true` iff `L(r) = ∅`.
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Star(_) => false,
            Regex::Class(c) => c.is_empty(),
            Regex::Concat(ps) => ps.iter().any(Regex::is_empty_language),
            Regex::Alt(bs) => bs.iter().all(Regex::is_empty_language),
        }
    }

    /// Whether `ε ∈ L(r)` (nullable).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Alt(bs) => bs.iter().any(Regex::nullable),
        }
    }

    /// If `L(r)` is a single word, returns it. Used by engines to fast-path
    /// deterministic keys (`X_w` as a special case of `X_e`).
    pub fn as_single_word(&self) -> Option<String> {
        fn go(r: &Regex, out: &mut String) -> Option<()> {
            match r {
                Regex::Epsilon => Some(()),
                Regex::Class(c) => {
                    if c.len() == 1 {
                        out.push(c.example().expect("nonempty"));
                        Some(())
                    } else {
                        None
                    }
                }
                Regex::Concat(ps) => {
                    for p in ps {
                        go(p, out)?;
                    }
                    Some(())
                }
                Regex::Alt(bs) if bs.len() == 1 => go(&bs[0], out),
                _ => None,
            }
        }
        let mut out = String::new();
        go(self, &mut out).map(|()| out)
    }

    /// Size of the syntax tree (used in `|φ|` accounting for experiments).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => 1,
            Regex::Concat(ps) => 1 + ps.iter().map(Regex::size).sum::<usize>(),
            Regex::Alt(bs) => 1 + bs.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(r) => 1 + r.size(),
        }
    }

    /// Compiles to an NFA-backed matcher.
    pub fn compile(&self) -> CompiledRegex {
        CompiledRegex::new(Nfa::from_regex(self))
    }

    /// Determinises into a [`Dfa`] for language algebra.
    pub fn to_dfa(&self) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(self))
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prints parseable syntax, parenthesising conservatively.
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Alt(_) => 0,
                Regex::Concat(_) => 1,
                _ => 2,
            }
        }
        fn show(r: &Regex, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            let p = prec(r);
            if p < min {
                write!(f, "(")?;
            }
            match r {
                Regex::Empty => write!(f, "[]")?,
                Regex::Epsilon => write!(f, "()")?,
                Regex::Class(c) => {
                    if c.len() == 1 {
                        let ch = c.example().expect("nonempty");
                        if "\\.[]()|*+?{}^$".contains(ch) {
                            write!(f, "\\{ch}")?;
                        } else {
                            write!(f, "{ch}")?;
                        }
                    } else {
                        write!(f, "{c}")?;
                    }
                }
                Regex::Concat(ps) => {
                    for part in ps {
                        show(part, f, 2)?;
                    }
                }
                Regex::Alt(bs) => {
                    for (i, b) in bs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        show(b, f, 1)?;
                    }
                }
                Regex::Star(inner) => {
                    show(inner, f, 2)?;
                    write!(f, "*")?;
                }
            }
            if p < min {
                write!(f, ")")?;
            }
            Ok(())
        }
        show(self, f, 0)
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_shapes() {
        assert_eq!(Regex::literal(""), Regex::Epsilon);
        assert!(matches!(Regex::literal("a"), Regex::Class(_)));
        assert_eq!(Regex::literal("ab").size(), 3);
    }

    #[test]
    fn emptiness_and_nullability() {
        assert!(Regex::Empty.is_empty_language());
        assert!(!Regex::sigma_star().is_empty_language());
        assert!(Regex::Concat(vec![Regex::Empty, Regex::Epsilon]).is_empty_language());
        assert!(Regex::sigma_star().nullable());
        assert!(!Regex::literal("a").nullable());
        assert!(Regex::opt(Regex::literal("a")).nullable());
    }

    #[test]
    fn single_word_detection() {
        assert_eq!(Regex::literal("key").as_single_word(), Some("key".into()));
        assert_eq!(Regex::sigma_star().as_single_word(), None);
        assert_eq!(
            Regex::Alt(vec![Regex::literal("a"), Regex::literal("b")]).as_single_word(),
            None
        );
        assert_eq!(Regex::Epsilon.as_single_word(), Some(String::new()));
    }

    #[test]
    fn display_round_trips_through_parser() {
        for src in ["abc", "a(b|c)a", "ab*a", "(a|b)*c", "[0-9]+", "x?y"] {
            let r = Regex::parse(src).unwrap();
            let shown = r.to_string();
            let back = Regex::parse(&shown).unwrap_or_else(|e| panic!("reparse {shown}: {e}"));
            // Compare languages on a sample rather than ASTs (derived forms
            // normalise differently).
            let (ca, cb) = (r.compile(), back.compile());
            for w in [
                "", "a", "b", "aba", "aa", "abbba", "0", "99", "xy", "y", "c",
            ] {
                assert_eq!(
                    ca.is_match(w),
                    cb.is_match(w),
                    "word {w} under {src} vs {shown}"
                );
            }
        }
    }
}
