//! Parallel-determinism and top-k pushdown suites for the tree executor.
//!
//! * **Determinism:** `jagg::aggregate` output must be byte-identical for
//!   every thread count (the 1-thread pool is the serial oracle — chunks
//!   run inline in order) across the three tree-column layouts: one big
//!   parse, many single-document insert segments, and post-`compact()`.
//!   The cross-segment `$group` cases here are the ones the merge-time
//!   `(segment, class)` unification must get right.
//! * **Top-k pushdown:** `$sort` + `$limit` (and `$sort` + `$skip` +
//!   `$limit`) run through a bounded heap in the tree executor while
//!   `jagg::reference` keeps the full sort — the differential checks pin
//!   equal output *including stability ties* (duplicate sort keys whose
//!   rows are distinguishable by another field).

use jagg::{reference, Pipeline};
use jpar::Pool;
use jsondata::{gen, serialize::to_string, Json};
use mongofind::Collection;

fn big_parse(n: usize) -> Collection {
    Collection::parse_str(&to_string(&gen::person_records(n, 9))).unwrap()
}

fn fragmented(n: usize) -> Collection {
    let Json::Array(docs) = gen::person_records(n, 9) else {
        panic!("person_records returns an array");
    };
    let mut coll = Collection::parse_str("[]").unwrap();
    for d in &docs {
        coll.insert_str(&to_string(d)).unwrap();
    }
    coll
}

fn shapes(n: usize) -> Vec<(&'static str, Collection)> {
    let mut compacted = fragmented(n);
    compacted.compact();
    vec![
        ("one_big_parse", big_parse(n)),
        ("fragmented_inserts", fragmented(n)),
        ("post_compact", compacted),
        ("empty", Collection::parse_str("[]").unwrap()),
    ]
}

/// Pipelines covering every parallel stage path: exact and inexact
/// leading `$match`, mid-pipeline `$match` over bindings, `$unwind`
/// fan-out, `$group` (order-sensitive accumulators included — these
/// catch any chunk-merge reordering), `$project`, `$sort` and the fused
/// and unfused pagination forms.
fn pipeline_corpus() -> Vec<&'static str> {
    vec![
        r#"[{"$match": {"name.first": {"$eq": "Sue"}}}]"#,
        r#"[{"$match": {"age": {"$gte": 30}}}, {"$project": {"name.last": 1, "age": 1}}]"#,
        r#"[{"$unwind": "$hobbies"}, {"$match": {"hobbies": {"$in": ["chess", "yoga"]}}}]"#,
        r#"[{"$unwind": "$hobbies"},
            {"$group": {"_id": "$hobbies", "n": {"$count": {}},
                        "ages": {"$push": "$age"},
                        "first_id": {"$first": "$id"}, "last_id": {"$last": "$id"},
                        "total": {"$sum": "$age"}, "avg": {"$avg": "$age"},
                        "lo": {"$min": "$age"}, "hi": {"$max": "$age"}}},
            {"$sort": {"n": 0, "_id": 1}}]"#,
        r#"[{"$group": {"_id": "$name.last", "n": {"$count": {}}, "ids": {"$push": "$id"}}}]"#,
        r#"[{"$group": {"_id": "$name", "n": {"$count": {}}}}]"#,
        r#"[{"$group": {"_id": {"f": "$name.first", "l": "$name.last"}, "youngest": {"$min": "$age"}}},
            {"$sort": {"youngest": 1, "_id": 1}}]"#,
        r#"[{"$match": {"name.last": {"$in": ["Doe", "Kim", "Chen"]}}},
            {"$unwind": "$hobbies"},
            {"$group": {"_id": "$hobbies", "by": {"$push": "$name.first"}}}]"#,
        r#"[{"$sort": {"age": 1, "id": 1}}, {"$skip": 10}, {"$limit": 5}]"#,
        r#"[{"$sort": {"age": 0}}, {"$limit": 7}]"#,
        r#"[{"$sort": {"age": 1}}]"#,
        r#"[{"$project": {"a": "$age", "f": "$name.first"}}, {"$sort": {"a": 0, "f": 1}}, {"$limit": 3}]"#,
        r#"[{"$count": "docs"}]"#,
    ]
}

#[test]
fn aggregate_is_identical_across_thread_counts_and_layouts() {
    for (label, mut coll) in shapes(900) {
        let docs = coll.docs().to_vec();
        for src in pipeline_corpus() {
            let pipe = Pipeline::parse_str(src).unwrap();
            let oracle = reference::aggregate(&docs, &pipe);
            for threads in [1, 2, 8] {
                coll.set_pool(Pool::with_threads(threads));
                assert_eq!(
                    jagg::aggregate(&coll, &pipe),
                    oracle,
                    "{label} x{threads}: {src}"
                );
            }
        }
    }
}

#[test]
fn cross_segment_groups_merge_order_sensitively() {
    // Rows of one group alternate between segments; $push/$first/$last
    // must still observe them in document order — the case the merge-time
    // (segment, class) unification exists for.
    let mut coll = Collection::parse_str("[]").unwrap();
    for i in 0..600u64 {
        let key = ["a", "b", "c"][(i % 3) as usize];
        coll.insert_str(&format!(r#"{{"k": "{key}", "i": {i}}}"#))
            .unwrap();
    }
    let pipe = Pipeline::parse_str(
        r#"[{"$group": {"_id": "$k", "all": {"$push": "$i"},
                        "head": {"$first": "$i"}, "tail": {"$last": "$i"}}},
            {"$sort": {"_id": 1}}]"#,
    )
    .unwrap();
    let oracle = reference::aggregate(coll.docs(), &pipe);
    for threads in [1, 2, 8] {
        coll.set_pool(Pool::with_threads(threads));
        assert_eq!(jagg::aggregate(&coll, &pipe), oracle, "x{threads}");
    }
    // And after compaction the same groups come from one segment's
    // classes instead of 600 — answers unchanged.
    coll.compact();
    for threads in [1, 8] {
        coll.set_pool(Pool::with_threads(threads));
        assert_eq!(
            jagg::aggregate(&coll, &pipe),
            oracle,
            "compacted x{threads}"
        );
    }
}

/// Collections and pipelines engineered so `$sort`+`$limit` cuts through
/// runs of equal sort keys: any instability in the bounded heap shows up
/// as a different surviving `id`.
#[test]
fn top_k_pushdown_matches_full_sort_including_ties() {
    // 500 docs over only 5 distinct sort keys → every cut lands mid-tie.
    let docs: Vec<Json> = (0..500u64)
        .map(|i| jsondata::parse(&format!(r#"{{"id": {i}, "age": {}}}"#, i % 5)).unwrap())
        .collect();
    let mut coll = Collection::from_json(&Json::Array(docs.clone()));
    let cases = [
        r#"[{"$sort": {"age": 1}}, {"$limit": 12}]"#,
        r#"[{"$sort": {"age": 0}}, {"$limit": 12}]"#,
        r#"[{"$sort": {"age": 1}}, {"$skip": 7}, {"$limit": 12}]"#,
        r#"[{"$sort": {"age": 0}}, {"$skip": 99}, {"$limit": 101}]"#,
        r#"[{"$sort": {"age": 1, "id": 1}}, {"$limit": 13}]"#,
        r#"[{"$sort": {"missing": 1, "age": 0}}, {"$limit": 9}]"#,
        // Degenerate bounds: empty keeps, over-long keeps, zero limit.
        r#"[{"$sort": {"age": 1}}, {"$limit": 0}]"#,
        r#"[{"$sort": {"age": 1}}, {"$skip": 1000}, {"$limit": 4}]"#,
        r#"[{"$sort": {"age": 1}}, {"$limit": 100000}]"#,
        r#"[{"$sort": {"age": 1}}, {"$skip": 499}, {"$limit": 5}]"#,
        // Unfused neighbours keep plain-sort semantics.
        r#"[{"$sort": {"age": 1}}, {"$skip": 3}]"#,
        r#"[{"$limit": 20}, {"$sort": {"age": 0}}]"#,
        r#"[{"$sort": {"age": 0}}, {"$sort": {"id": 1}}, {"$limit": 6}]"#,
        // Fusion after other stages, and feeding later stages.
        r#"[{"$unwind": "$missing"}, {"$sort": {"age": 1}}, {"$limit": 3}]"#,
        r#"[{"$group": {"_id": "$age", "n": {"$count": {}}}}, {"$sort": {"n": 0, "_id": 1}}, {"$limit": 2}]"#,
        r#"[{"$sort": {"age": 1}}, {"$limit": 25}, {"$group": {"_id": "$age", "ids": {"$push": "$id"}}}]"#,
    ];
    for src in cases {
        let pipe = Pipeline::parse_str(src).unwrap();
        let oracle = reference::aggregate(&docs, &pipe);
        for threads in [1, 2, 8] {
            coll.set_pool(Pool::with_threads(threads));
            assert_eq!(jagg::aggregate(&coll, &pipe), oracle, "x{threads}: {src}");
        }
    }
}

#[test]
fn top_k_stability_is_pinned_explicitly() {
    // Not just oracle agreement: the kept rows ARE the first-by-input
    // rows of each tie run. Ages tie in pairs; ids record input order.
    let docs: Vec<Json> = (0..10u64)
        .map(|i| jsondata::parse(&format!(r#"{{"id": {i}, "age": {}}}"#, i / 2)).unwrap())
        .collect();
    let coll = Collection::from_json(&Json::Array(docs));
    let pipe = Pipeline::parse_str(r#"[{"$sort": {"age": 1}}, {"$limit": 3}]"#).unwrap();
    let out = jagg::aggregate(&coll, &pipe);
    let ids: Vec<u64> = out
        .iter()
        .map(|d| d.get("id").unwrap().as_num().unwrap())
        .collect();
    // age runs are [0,0],[1,1],…; the stable cut keeps ids 0, 1, 2.
    assert_eq!(ids, vec![0, 1, 2]);

    let pipe =
        Pipeline::parse_str(r#"[{"$sort": {"age": 1}}, {"$skip": 1}, {"$limit": 3}]"#).unwrap();
    let out = jagg::aggregate(&coll, &pipe);
    let ids: Vec<u64> = out
        .iter()
        .map(|d| d.get("id").unwrap().as_num().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3]);
}
