//! RFC 6901 JSON Pointers, as used by JSON Schema `$ref`
//! (e.g. `#/definitions/email`).

use std::fmt;
use std::str::FromStr;

use crate::error::JsonError;
use crate::value::Json;

/// A parsed JSON Pointer: a sequence of reference tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JsonPointer {
    tokens: Vec<String>,
}

impl JsonPointer {
    /// The whole-document pointer (`""` or `#`).
    pub fn root() -> JsonPointer {
        JsonPointer::default()
    }

    /// The reference tokens.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Appends a token.
    #[must_use]
    pub fn push(mut self, token: impl Into<String>) -> JsonPointer {
        self.tokens.push(token.into());
        self
    }

    /// Resolves the pointer against a document.
    ///
    /// Tokens address object keys; on arrays, tokens must be decimal indices.
    pub fn resolve<'a>(&self, doc: &'a Json) -> Result<&'a Json, JsonError> {
        let mut cur = doc;
        for t in &self.tokens {
            cur = match cur {
                Json::Object(o) => o
                    .get(t)
                    .ok_or_else(|| JsonError::PointerUnresolved(self.to_string()))?,
                Json::Array(items) => {
                    let idx: usize = t
                        .parse()
                        .map_err(|_| JsonError::PointerUnresolved(self.to_string()))?;
                    // RFC 6901 forbids leading zeros for array indices.
                    if t.len() > 1 && t.starts_with('0') {
                        return Err(JsonError::PointerUnresolved(self.to_string()));
                    }
                    items
                        .get(idx)
                        .ok_or_else(|| JsonError::PointerUnresolved(self.to_string()))?
                }
                _ => return Err(JsonError::PointerUnresolved(self.to_string())),
            };
        }
        Ok(cur)
    }
}

impl FromStr for JsonPointer {
    type Err = JsonError;

    /// Accepts both plain pointers (`/a/b`) and URI-fragment pointers
    /// (`#/a/b`); the empty string and `#` denote the root.
    fn from_str(s: &str) -> Result<JsonPointer, JsonError> {
        let body = s.strip_prefix('#').unwrap_or(s);
        if body.is_empty() {
            return Ok(JsonPointer::root());
        }
        let Some(rest) = body.strip_prefix('/') else {
            return Err(JsonError::PointerSyntax(s.to_owned()));
        };
        let mut tokens = Vec::new();
        for raw in rest.split('/') {
            tokens.push(unescape_token(raw, s)?);
        }
        Ok(JsonPointer { tokens })
    }
}

fn unescape_token(raw: &str, whole: &str) -> Result<String, JsonError> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '~' {
            match chars.next() {
                Some('0') => out.push('~'),
                Some('1') => out.push('/'),
                _ => return Err(JsonError::PointerSyntax(whole.to_owned())),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

impl fmt::Display for JsonPointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            write!(f, "/{}", t.replace('~', "~0").replace('/', "~1"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn resolves_schema_style_refs() {
        let doc =
            parse(r#"{"definitions": {"email": {"type": "string", "pattern": "[A-z]*@ciws.cl"}}}"#)
                .unwrap();
        let p: JsonPointer = "#/definitions/email".parse().unwrap();
        let got = p.resolve(&doc).unwrap();
        assert_eq!(got.get("type"), Some(&Json::str("string")));
    }

    #[test]
    fn root_pointer() {
        let doc = parse("[1,2]").unwrap();
        assert_eq!(
            "".parse::<JsonPointer>().unwrap().resolve(&doc).unwrap(),
            &doc
        );
        assert_eq!(
            "#".parse::<JsonPointer>().unwrap().resolve(&doc).unwrap(),
            &doc
        );
    }

    #[test]
    fn array_indices() {
        let doc = parse(r#"{"a": [10, 20, 30]}"#).unwrap();
        let p: JsonPointer = "/a/2".parse().unwrap();
        assert_eq!(p.resolve(&doc).unwrap(), &Json::Num(30));
        assert!("/a/03"
            .parse::<JsonPointer>()
            .unwrap()
            .resolve(&doc)
            .is_err());
        assert!("/a/9"
            .parse::<JsonPointer>()
            .unwrap()
            .resolve(&doc)
            .is_err());
        assert!("/a/x"
            .parse::<JsonPointer>()
            .unwrap()
            .resolve(&doc)
            .is_err());
    }

    #[test]
    fn escaping() {
        let doc = parse(r#"{"a/b": {"m~n": 1}}"#).unwrap();
        let p: JsonPointer = "/a~1b/m~0n".parse().unwrap();
        assert_eq!(p.resolve(&doc).unwrap(), &Json::Num(1));
        assert_eq!(p.to_string(), "/a~1b/m~0n");
        let back: JsonPointer = p.to_string().parse().unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn rejects_malformed() {
        assert!("abc".parse::<JsonPointer>().is_err());
        assert!("/a~2b".parse::<JsonPointer>().is_err());
        assert!("/a~".parse::<JsonPointer>().is_err());
    }

    #[test]
    fn empty_token_is_a_key() {
        let doc = parse(r#"{"": 5}"#).unwrap();
        let p: JsonPointer = "/".parse().unwrap();
        assert_eq!(p.resolve(&doc).unwrap(), &Json::Num(5));
    }

    #[test]
    fn cannot_descend_into_scalars() {
        let doc = parse(r#"{"a": 1}"#).unwrap();
        assert!("/a/b"
            .parse::<JsonPointer>()
            .unwrap()
            .resolve(&doc)
            .is_err());
    }
}
