//! Evaluation of (non-recursive) JSL — Proposition 6.
//!
//! One bottom-up pass per subformula gives `O(|J|·|φ|)` when `Unique` is
//! absent. `Unique` is implemented twice:
//!
//! * [`UniqueStrategy::NaivePairwise`] — the paper's bound: all pairs of
//!   children compared structurally, `O(|J|²)` overall (the E7 baseline);
//! * [`UniqueStrategy::Canonical`] — children's canonical classes sorted
//!   and scanned, `O(|J| log |J|)` (the refinement measured against it).

use jsondata::{CanonTable, Json, JsonTree, NodeId, NodeKind, Sym};
use relex::{EdgeStrategy, Regex, SymMatcher, SymMatcherTable};

use crate::ast::{Jsl, NodeTest};

/// Node-set result (indexed by `NodeId::index()`).
pub type NodeSet = Vec<bool>;

/// How the `Unique` node test is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UniqueStrategy {
    /// Compare all pairs of children structurally (quadratic; the paper's
    /// Proposition 6 bound).
    NaivePairwise,
    /// Compare canonical class ids (linearithmic).
    #[default]
    Canonical,
}

/// Evaluation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Strategy for `Unique`.
    pub unique: UniqueStrategy,
    /// Strategy for regex edge/pattern tests (default: precomputed DFA
    /// bitsets over the symbol table; the lazy memo tier is kept for
    /// benchmark ablations).
    pub edge: EdgeStrategy,
}

/// Shared evaluation state (canonical table + per-regex edge matchers).
///
/// Both edge keys and string atoms are interned by the tree, so every regex
/// — key modality or `Pattern` node test — is compiled once per (query,
/// tree); on the default tier its verdicts are precomputed as a symbol
/// bitset and every test afterwards is a single bit load.
pub struct JslContext<'t> {
    /// The tree under evaluation.
    pub tree: &'t JsonTree,
    /// Canonical subtree labels.
    pub canon: CanonTable,
    matchers: SymMatcherTable,
    options: EvalOptions,
}

impl<'t> JslContext<'t> {
    /// Builds a context with default options.
    pub fn new(tree: &'t JsonTree) -> JslContext<'t> {
        JslContext::with_options(tree, EvalOptions::default())
    }

    /// Builds a context with explicit options.
    pub fn with_options(tree: &'t JsonTree, options: EvalOptions) -> JslContext<'t> {
        JslContext {
            tree,
            canon: CanonTable::build(tree),
            matchers: SymMatcherTable::with_strategy(options.edge),
            options,
        }
    }

    /// Whether the string behind `sym` matches `e` — a bit load on the
    /// default tier.
    pub fn key_matches(&mut self, e: &Regex, sym: Sym) -> bool {
        let tree = self.tree;
        self.matcher_for(e)
            .matches_sym(sym.index(), || tree.resolve(sym))
    }

    /// The edge matcher for `e` — fetch once before a loop over many edges
    /// so the table probe (which hashes the regex AST) runs once, not per
    /// edge.
    pub fn matcher_for(&mut self, e: &Regex) -> &mut SymMatcher {
        let tree = self.tree;
        self.matchers
            .matcher(e, || tree.interner().iter().map(|(_, s)| s))
    }

    /// Evaluates one node test at one node.
    pub fn node_test(&mut self, t: &NodeTest, n: NodeId) -> bool {
        let tree = self.tree;
        match t {
            NodeTest::Arr => tree.kind(n) == NodeKind::Arr,
            NodeTest::Obj => tree.kind(n) == NodeKind::Obj,
            NodeTest::Str => tree.kind(n) == NodeKind::Str,
            NodeTest::Int => tree.kind(n) == NodeKind::Int,
            NodeTest::Pattern(e) => match tree.str_sym(n) {
                Some(sym) => self.key_matches(e, sym),
                None => false,
            },
            NodeTest::Min(i) => tree.num_value(n).is_some_and(|v| v >= *i),
            NodeTest::Max(i) => tree.num_value(n).is_some_and(|v| v <= *i),
            NodeTest::MultOf(i) => {
                tree.num_value(n)
                    .is_some_and(|v| if *i == 0 { v == 0 } else { v % i == 0 })
            }
            NodeTest::MinCh(i) => (tree.child_count(n) as u64) >= *i,
            NodeTest::MaxCh(i) => (tree.child_count(n) as u64) <= *i,
            NodeTest::EqDoc(doc) => {
                self.canon.class_of_json(tree, doc) == Some(self.canon.class_of(n))
            }
            NodeTest::Unique => self.unique(n),
        }
    }

    fn unique(&mut self, n: NodeId) -> bool {
        let tree = self.tree;
        if tree.kind(n) != NodeKind::Arr {
            return false;
        }
        let cs = tree.arr_children(n);
        match self.options.unique {
            UniqueStrategy::Canonical => {
                let mut classes: Vec<u32> = cs.iter().map(|c| self.canon.class_of(*c)).collect();
                classes.sort_unstable();
                classes.windows(2).all(|w| w[0] != w[1])
            }
            UniqueStrategy::NaivePairwise => {
                // Materialise each child's JSON value and compare all pairs
                // structurally — the paper's quadratic bound, kept as the E7
                // ablation baseline.
                let docs: Vec<Json> = cs.iter().map(|c| tree.json_at(*c)).collect();
                for i in 0..docs.len() {
                    for j in i + 1..docs.len() {
                        if docs[i] == docs[j] {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

/// Evaluates `φ` at every node (Proposition 6).
pub fn evaluate(tree: &JsonTree, phi: &Jsl) -> NodeSet {
    evaluate_with(tree, phi, EvalOptions::default())
}

/// Evaluates with explicit options.
pub fn evaluate_with(tree: &JsonTree, phi: &Jsl, options: EvalOptions) -> NodeSet {
    let mut ctx = JslContext::with_options(tree, options);
    eval_set(&mut ctx, phi)
}

/// `J |ù φ`: evaluation at the root (the paper's schema-validation reading).
pub fn check_root(tree: &JsonTree, phi: &Jsl) -> bool {
    evaluate(tree, phi)[tree.root().index()]
}

pub(crate) fn eval_set(ctx: &mut JslContext<'_>, phi: &Jsl) -> NodeSet {
    let n = ctx.tree.node_count();
    match phi {
        Jsl::True => vec![true; n],
        Jsl::Var(v) => panic!(
            "free formula variable ${v} outside a recursive JSL context (use crate::recursive)"
        ),
        Jsl::Not(p) => {
            let mut s = eval_set(ctx, p);
            for b in &mut s {
                *b = !*b;
            }
            s
        }
        Jsl::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let s = eval_set(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a &= b;
                }
            }
            acc
        }
        Jsl::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let s = eval_set(ctx, p);
                for (a, b) in acc.iter_mut().zip(s) {
                    *a |= b;
                }
            }
            acc
        }
        // Pattern is special-cased so the matcher is fetched once for the
        // whole pass, not table-probed per node.
        Jsl::Test(NodeTest::Pattern(e)) => {
            let tree = ctx.tree;
            let matcher = ctx.matcher_for(e);
            tree.node_ids()
                .map(|nd| match tree.str_sym(nd) {
                    Some(sym) => matcher.matches_sym(sym.index(), || tree.resolve(sym)),
                    None => false,
                })
                .collect()
        }
        Jsl::Test(t) => (0..n)
            .map(|i| ctx.node_test(t, NodeId::from_index(i)))
            .collect(),
        Jsl::DiamondKey(e, p) => {
            let inner = eval_set(ctx, p);
            let tree = ctx.tree;
            let matcher = ctx.matcher_for(e);
            let mut out = Vec::with_capacity(n);
            for nd in tree.node_ids() {
                out.push(tree.obj_entries(nd).any(|(k, c)| {
                    inner[c.index()] && matcher.matches_sym(k.index(), || tree.resolve(k))
                }));
            }
            out
        }
        Jsl::BoxKey(e, p) => {
            let inner = eval_set(ctx, p);
            let tree = ctx.tree;
            let matcher = ctx.matcher_for(e);
            let mut out = Vec::with_capacity(n);
            for nd in tree.node_ids() {
                out.push(tree.obj_entries(nd).all(|(k, c)| {
                    inner[c.index()] || !matcher.matches_sym(k.index(), || tree.resolve(k))
                }));
            }
            out
        }
        Jsl::DiamondRange(i, j, p) => {
            let inner = eval_set(ctx, p);
            ctx.tree
                .node_ids()
                .map(|nd| {
                    ctx.tree
                        .arr_children(nd)
                        .iter()
                        .enumerate()
                        .any(|(pos, c)| {
                            let pos = pos as u64;
                            pos >= *i && j.is_none_or(|j| pos <= j) && inner[c.index()]
                        })
                })
                .collect()
        }
        Jsl::BoxRange(i, j, p) => {
            let inner = eval_set(ctx, p);
            ctx.tree
                .node_ids()
                .map(|nd| {
                    ctx.tree
                        .arr_children(nd)
                        .iter()
                        .enumerate()
                        .all(|(pos, c)| {
                            let pos = pos as u64;
                            !(pos >= *i && j.is_none_or(|j| pos <= j)) || inner[c.index()]
                        })
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Jsl as J;
    use jsondata::parse;

    fn tree(src: &str) -> JsonTree {
        JsonTree::build(&parse(src).unwrap())
    }

    #[test]
    fn node_tests() {
        let t = tree(r#"{"s": "abc", "n": 12, "a": [1, 1], "o": {}}"#);
        let mut ctx = JslContext::new(&t);
        let s = t.child_by_key(t.root(), "s").unwrap();
        let n = t.child_by_key(t.root(), "n").unwrap();
        let a = t.child_by_key(t.root(), "a").unwrap();
        let o = t.child_by_key(t.root(), "o").unwrap();

        assert!(ctx.node_test(&NodeTest::Str, s));
        assert!(ctx.node_test(&NodeTest::Pattern(Regex::parse("a.*").unwrap()), s));
        assert!(!ctx.node_test(&NodeTest::Pattern(Regex::parse("b.*").unwrap()), s));
        assert!(ctx.node_test(&NodeTest::Int, n));
        assert!(ctx.node_test(&NodeTest::Min(12), n));
        assert!(!ctx.node_test(&NodeTest::Min(13), n));
        assert!(ctx.node_test(&NodeTest::Max(12), n));
        assert!(ctx.node_test(&NodeTest::MultOf(4), n));
        assert!(!ctx.node_test(&NodeTest::MultOf(5), n));
        assert!(ctx.node_test(&NodeTest::Arr, a));
        assert!(!ctx.node_test(&NodeTest::Unique, a), "duplicates");
        assert!(ctx.node_test(&NodeTest::Obj, o));
        assert!(ctx.node_test(&NodeTest::MinCh(4), t.root()));
        assert!(ctx.node_test(&NodeTest::MaxCh(4), t.root()));
        assert!(!ctx.node_test(&NodeTest::MaxCh(3), t.root()));
        assert!(ctx.node_test(&NodeTest::EqDoc(parse("12").unwrap()), n));
        assert!(!ctx.node_test(&NodeTest::EqDoc(parse("13").unwrap()), n));
    }

    #[test]
    fn unique_strategies_agree() {
        for src in [
            r#"[1, 2, 3]"#,
            r#"[1, 2, 1]"#,
            r#"[{"a": 1}, {"a": 1}]"#,
            r#"[{"a": 1}, {"a": 2}]"#,
            r#"[[], {}, "", 0]"#,
            r#"[]"#,
        ] {
            let t = tree(src);
            let phi = J::Test(NodeTest::Unique);
            let naive = evaluate_with(
                &t,
                &phi,
                EvalOptions {
                    unique: UniqueStrategy::NaivePairwise,
                    ..Default::default()
                },
            );
            let canon = evaluate_with(
                &t,
                &phi,
                EvalOptions {
                    unique: UniqueStrategy::Canonical,
                    ..Default::default()
                },
            );
            assert_eq!(naive, canon, "doc {src}");
        }
    }

    #[test]
    fn modalities() {
        let t = tree(r#"{"name": "x", "aba": 2, "aca": 4, "arr": [10, 11, 12]}"#);
        // ◇_{a(b|c)a} MultOf(2)
        let phi = J::DiamondKey(
            Regex::parse("a(b|c)a").unwrap(),
            Box::new(J::Test(NodeTest::MultOf(2))),
        );
        assert!(check_root(&t, &phi));
        // □_{a(b|c)a} MultOf(2): both aba and aca are even.
        let phi = J::BoxKey(
            Regex::parse("a(b|c)a").unwrap(),
            Box::new(J::Test(NodeTest::MultOf(2))),
        );
        assert!(check_root(&t, &phi));
        // □_{a(b|c)a} MultOf(4): aba=2 fails.
        let phi = J::BoxKey(
            Regex::parse("a(b|c)a").unwrap(),
            Box::new(J::Test(NodeTest::MultOf(4))),
        );
        assert!(!check_root(&t, &phi));
        // Array ranges under the key arr.
        let arr_phi = |inner: J| J::diamond_key("arr", inner);
        assert!(check_root(
            &t,
            &arr_phi(J::DiamondRange(
                1,
                Some(2),
                Box::new(J::Test(NodeTest::Min(12)))
            ))
        ));
        assert!(!check_root(
            &t,
            &arr_phi(J::DiamondRange(
                0,
                Some(1),
                Box::new(J::Test(NodeTest::Min(12)))
            ))
        ));
        assert!(check_root(
            &t,
            &arr_phi(J::BoxRange(0, None, Box::new(J::Test(NodeTest::Min(10)))))
        ));
        assert!(!check_root(
            &t,
            &arr_phi(J::BoxRange(0, None, Box::new(J::Test(NodeTest::Min(11)))))
        ));
    }

    #[test]
    fn box_is_vacuous_on_leaves_and_mismatched_kinds() {
        let t = tree(r#"{"leaf": 5}"#);
        let leaf = t.child_by_key(t.root(), "leaf").unwrap();
        // □ over keys at a number node: vacuously true.
        let phi = J::box_any_key(J::falsity());
        assert!(evaluate(&t, &phi)[leaf.index()]);
        // ◇ at a number node: false.
        let phi = J::diamond_any_key(J::True);
        assert!(!evaluate(&t, &phi)[leaf.index()]);
    }

    #[test]
    fn paper_object_schema_example() {
        // §5.1 example: name must be a string, a(b|c)a keys even numbers,
        // everything else exactly the number 1.
        let name_re = Regex::literal("name");
        let abc_re = Regex::parse("a(b|c)a").unwrap();
        let other = name_re.to_dfa().union(&abc_re.to_dfa());
        // Complement via DFA → we only need a regex for testing membership;
        // approximate with box over specific keys in the test documents.
        let _ = other;
        let phi = J::and(vec![
            J::Test(NodeTest::Obj),
            J::BoxKey(name_re, Box::new(J::Test(NodeTest::Str))),
            J::BoxKey(
                abc_re,
                Box::new(J::and(vec![
                    J::Test(NodeTest::Int),
                    J::Test(NodeTest::MultOf(2)),
                ])),
            ),
        ]);
        assert!(check_root(&tree(r#"{"name": "x", "aba": 4}"#), &phi));
        assert!(!check_root(&tree(r#"{"name": 3}"#), &phi));
        assert!(!check_root(&tree(r#"{"aca": 3}"#), &phi));
    }

    #[test]
    #[should_panic(expected = "free formula variable")]
    fn free_variables_panic() {
        let t = tree("{}");
        let _ = evaluate(&t, &J::Var("g".into()));
    }
}
