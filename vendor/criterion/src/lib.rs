//! Offline shim for the subset of the `criterion` benchmark harness this
//! workspace uses.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! same entry points (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `black_box`) with a simple
//! median-of-samples timer instead of criterion's full statistics engine.
//! Sample counts are respected, warm-up is one iteration, and results print
//! as `group/function/param  median  (samples)` lines.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            group: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("default");
        g.run(name, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, &mut f);
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up pass, then the timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher { elapsed_ns: 0 };
            f(&mut b);
            if i > 0 {
                samples.push(b.elapsed_ns);
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "  {}/{label}: median {:.3} ms ({} samples)",
            self.group,
            median as f64 / 1e6,
            samples.len()
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timing handle passed to closures.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one call of `routine` (one iteration per sample keeps the shim
    /// cheap enough to run in CI).
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let t0 = Instant::now();
        black_box(routine());
        self.elapsed_ns = t0.elapsed().as_nanos();
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
    }
}
