//! Offline shim for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This crate implements the exact API surface the
//! workspace calls — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! (inclusive and exclusive) integer ranges, and `Rng::gen_bool` — on top of
//! the public-domain xoshiro256++ generator.
//!
//! Streams are deterministic in the seed (all the workspace requires) but do
//! **not** bit-match the upstream `rand` implementation.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng` for the methods used).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface (shim of `rand::Rng` for the methods used).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |bound| self.gen_bounded(bound))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, as the real implementation does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform value in `0..bound` via Lemire-style rejection.
    fn gen_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Integer types that can be drawn from a uniform range.
pub trait SampleUniform: Copy {
    /// Converts to the common u64 offset domain (order-preserving).
    fn to_offset(self) -> u64;
    /// Converts back from the offset domain.
    fn from_offset(offset: u64) -> Self;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_offset(self) -> u64 {
                self as u64
            }
            fn from_offset(offset: u64) -> Self {
                offset as $t
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_offset(self) -> u64 {
                (self as i64).wrapping_sub(i64::MIN) as u64
            }
            fn from_offset(offset: u64) -> Self {
                (offset as i64).wrapping_add(i64::MIN) as $t
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

/// Ranges a value can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draws one value using `draw(bound) -> uniform in 0..bound`.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T {
        let (lo, hi) = (self.start.to_offset(), self.end.to_offset());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_offset(lo + draw(hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T {
        let (lo, hi) = (self.start().to_offset(), self.end().to_offset());
        assert!(lo <= hi, "cannot sample from an empty range");
        if lo == 0 && hi == u64::MAX {
            // Full domain: no rejection needed, any draw works.
            return T::from_offset(draw(u64::MAX));
        }
        T::from_offset(lo + draw(hi - lo + 1))
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Shim of `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the standard seeding recipe for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v: usize = r.gen_range(0..=4);
            assert!(v <= 4);
            let v: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn covers_whole_small_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
