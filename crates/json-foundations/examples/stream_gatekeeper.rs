//! The §6 streaming scenario: validate documents against a JSL policy
//! one event at a time — no tree is ever built — and use containment
//! checking to prove one query filter subsumes another before deployment.
//!
//! ```sh
//! cargo run --example stream_gatekeeper
//! ```

use json_foundations::nav::{contained_in, Containment};
use json_foundations::schema_logic::parse_jsl;
use json_foundations::schema_logic::streaming::{events_of, StreamingValidator};
use jsondata::parse;

fn main() {
    // A policy in JSL concrete syntax: objects whose `amount` is a positive
    // multiple of 5 and whose optional `tags` are all strings.
    let policy = parse_jsl(r#"Obj & <amount>(Int & MultOf(5) & Min(5)) & [tags]([0:inf](Str))"#)
        .expect("policy parses");
    println!("policy: {policy}\n");

    let feed = [
        r#"{"amount": 25, "tags": ["ok"]}"#,
        r#"{"amount": 7}"#,
        r#"{"amount": 25, "tags": ["ok", 3]}"#,
        r#"{"tags": []}"#,
        r#"{"amount": 5}"#,
    ];
    println!("== streaming validation (no tree materialised) ==");
    for (i, src) in feed.iter().enumerate() {
        let doc = parse(src).expect("feed documents are JSON");
        let mut v = StreamingValidator::new(&policy).expect("policy is streamable");
        let mut events = 0usize;
        for e in events_of(&doc) {
            v.feed(&e).expect("well-formed stream");
            events += 1;
        }
        let verdict = v.finish().expect("complete stream");
        println!(
            "doc {i}: {events:>2} events → {}",
            if verdict { "ACCEPT" } else { "REJECT" }
        );
    }

    // Static analysis before rollout: the new, stricter filter must only
    // ever accept documents the old one accepted (coNP via Prop 2).
    println!("\n== filter containment (deploy-time check) ==");
    let old_filter = jnl::parse_unary(r#"[@"amount"]"#).unwrap();
    let new_filter = jnl::parse_unary(r#"eqdoc(@"currency", "EUR") & [@"amount"]"#).unwrap();
    match contained_in(new_filter.clone(), old_filter.clone()) {
        Containment::Contained => {
            println!("new ⊑ old: safe to roll out (accepts a subset)")
        }
        Containment::NotContained(w) => {
            println!("new filter accepts documents the old one rejects, e.g. {w}")
        }
        Containment::Unknown(r) => println!("undecided: {r}"),
    }
    // And the reverse direction is expected to fail, with a counterexample.
    match contained_in(old_filter, new_filter) {
        Containment::NotContained(w) => {
            println!("old ⋢ new: counterexample {w}")
        }
        other => println!("unexpected: {other:?}"),
    }
}
