//! The experiment harness: regenerates the per-proposition measurement
//! tables recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p bench --release --bin harness          # all experiments
//! cargo run -p bench --release --bin harness -- e1 e7 # a subset
//! ```

use bench::jsonout::Val;
use bench::*;
use jsondata::JsonTree;

/// S4 reports allocation profiles, so the harness installs the counting
/// allocator — its counters are disabled outside `memtrack::measure`
/// windows (one relaxed bool load per allocation), so no experiment's
/// *timed* region is instrumented, including S4's own wall clocks.
#[global_allocator]
static ALLOC: bench::memtrack::CountingAlloc = bench::memtrack::CountingAlloc;

/// Every experiment the harness knows, in run order. The dispatch loop
/// walks this table, so a mode exists exactly when it can be named on
/// the command line — no way to add one without making it reachable.
const MODES: &[(&str, fn())] = &[
    ("e1", e1),
    ("e2", e2),
    ("e3", e3),
    ("e4", e4),
    ("e5", e5),
    ("e6", e6),
    ("e7", e7),
    ("e8", e8),
    ("e9", e9),
    ("e10", e10),
    ("e11", e11),
    ("e12", e12),
    ("t1", t1),
    ("s1", s1),
    ("s2", s2),
    ("s3", s3),
    ("s4", s4),
    ("s5", s5),
    ("s6", s6),
    ("s7", s7),
    ("s8", s8),
    ("s9", s9),
    ("s10", s10),
    ("s11", s11),
];

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A misspelled mode used to no-op silently — in CI that reads as "the
    // gate ran and passed" when nothing ran at all. Unknown names are a
    // hard error before any experiment starts.
    let unknown: Vec<&str> = args
        .iter()
        .filter(|a| !MODES.iter().any(|(id, _)| id == a))
        .map(String::as_str)
        .collect();
    if !unknown.is_empty() {
        let valid: Vec<&str> = MODES.iter().map(|&(id, _)| id).collect();
        eprintln!(
            "harness: unknown mode(s): {}\nvalid modes: {}",
            unknown.join(", "),
            valid.join(", ")
        );
        return std::process::ExitCode::FAILURE;
    }
    for (id, run) in MODES {
        if args.is_empty() || args.iter().any(|a| a == id) {
            run();
        }
    }
    std::process::ExitCode::SUCCESS
}

fn header(id: &str, claim: &str) {
    println!("\n=== {id}: {claim} ===");
}

/// E1 — Prop 1: deterministic JNL evaluation O(|J|·|φ|).
fn e1() {
    header("E1", "Prop 1 — deterministic JNL evaluation, O(|J|·|phi|)");
    let phi = e1_formula();
    println!(
        "{}",
        row(&["|J|".into(), "linear ms".into(), "oracle ms".into()])
    );
    let mut pts = Vec::new();
    for exp in [10, 11, 12, 13, 14, 15, 16] {
        let n = 1usize << exp;
        let doc = scaling_doc(n, 1);
        let tree = JsonTree::build(&doc);
        let fast = time_ms(3, || jnl::eval::linear::eval(&tree, &phi).unwrap());
        let naive = if n <= 1 << 12 {
            format!("{:.2}", time_ms(1, || jnl::eval::naive::eval(&tree, &phi)))
        } else {
            "-".into()
        };
        pts.push((tree.node_count() as f64, fast));
        println!(
            "{}",
            row(&[
                format!("{}", tree.node_count()),
                format!("{fast:.2}"),
                naive
            ])
        );
    }
    println!("fitted |J|-exponent (claim: ~1): {:.2}", loglog_slope(&pts));

    println!("{}", row(&["|phi|".into(), "linear ms".into()]));
    let doc = scaling_doc(1 << 13, 1);
    let tree = JsonTree::build(&doc);
    let mut pts = Vec::new();
    for k in [8, 16, 32, 64, 128, 256] {
        let phi = e1_formula_sized(k);
        let ms = time_ms(3, || jnl::eval::linear::eval(&tree, &phi).unwrap());
        pts.push((phi.size() as f64, ms));
        println!("{}", row(&[format!("{}", phi.size()), format!("{ms:.2}")]));
    }
    println!(
        "fitted |phi|-exponent (claim: ~1): {:.2}",
        loglog_slope(&pts)
    );
}

/// E2 — Prop 2: deterministic JNL satisfiability (NP), 3SAT reduction.
fn e2() {
    header(
        "E2",
        "Prop 2 — deterministic JNL satisfiability via 3SAT (NP-complete)",
    );
    use jnl::reduce::threesat::ThreeSat;
    println!(
        "{}",
        row(&[
            "vars".into(),
            "clauses".into(),
            "result".into(),
            "ms".into(),
            "verified".into()
        ])
    );
    for (n, seed) in [(5usize, 1u64), (8, 2), (10, 3), (12, 4), (14, 5)] {
        let m = (n as f64 * 4.2) as usize;
        let inst = ThreeSat::random(n, m, seed);
        let phi = inst.to_jnl();
        let t0 = std::time::Instant::now();
        let res = jnl::sat::det::sat_deterministic_with_budget(&phi, 2_000_000);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let (label, verified) = match &res {
            jnl::SatResult::Sat(w) => {
                let a = inst.decode_witness(w);
                ("SAT", inst.eval(&a).to_string())
            }
            jnl::SatResult::Unsat => ("UNSAT", "n/a".into()),
            jnl::SatResult::Unknown(_) => ("UNKNOWN", "n/a".into()),
        };
        println!(
            "{}",
            row(&[
                n.to_string(),
                m.to_string(),
                label.into(),
                format!("{ms:.1}"),
                verified
            ])
        );
    }
}

/// E3 — Prop 3: recursive/non-deterministic evaluation, linear without
/// EQ(α,β), cubic with it.
fn e3() {
    header(
        "E3",
        "Prop 3 — recursive eval: linear eq-free (PDL) vs cubic with EQ(a,b)",
    );
    let eqfree = e3_formula_eqfree();
    let eqpair = e3_formula_eqpair();
    println!(
        "{}",
        row(&["|J|".into(), "pdl ms".into(), "cubic ms".into()])
    );
    let mut pdl_pts = Vec::new();
    let mut cubic_pts = Vec::new();
    for exp in [8, 9, 10, 11, 12] {
        let n = 1usize << exp;
        let doc = scaling_doc(n, 3);
        let tree = JsonTree::build(&doc);
        let p = time_ms(3, || jnl::eval::pdl::eval(&tree, &eqfree).unwrap());
        let c = time_ms(1, || jnl::eval::cubic::eval(&tree, &eqpair));
        pdl_pts.push((tree.node_count() as f64, p));
        cubic_pts.push((tree.node_count() as f64, c));
        println!(
            "{}",
            row(&[
                tree.node_count().to_string(),
                format!("{p:.2}"),
                format!("{c:.2}")
            ])
        );
    }
    println!(
        "fitted exponents — pdl (claim ~1): {:.2}, cubic (claim >1, ≤3 worst-case): {:.2}",
        loglog_slope(&pdl_pts),
        loglog_slope(&cubic_pts)
    );
}

/// E4 — Prop 4: the undecidability reduction exercised on a halting machine.
fn e4() {
    header(
        "E4",
        "Prop 4 — Minsky-machine reduction (undecidability witness check)",
    );
    use jnl::reduce::minsky::{Instr, MinskyMachine};
    let m = MinskyMachine {
        program: vec![
            Instr::Inc(0, 1),
            Instr::Inc(0, 2),
            Instr::Inc(1, 3),
            Instr::Dec(0, 4),
            Instr::Dec(0, 5),
            Instr::Dec(1, 6),
            Instr::IfZero(0, 7, 7),
            Instr::Halt,
        ],
    };
    let trace = m.run(1000).expect("machine halts");
    let witness = MinskyMachine::encode_trace(&trace);
    let tree = JsonTree::build(&witness);
    let phi = m.to_jnl();
    let accepted = jnl::eval::cubic::eval(&tree, &phi)[0];
    println!(
        "halting run length {} -> formula accepts witness: {accepted}",
        trace.len()
    );
    let mut bad = trace.clone();
    bad[1].counters[0] += 1;
    let corrupted = MinskyMachine::encode_trace(&bad);
    let t2 = JsonTree::build(&corrupted);
    println!(
        "corrupted run rejected: {}",
        !jnl::eval::cubic::eval(&t2, &phi)[0]
    );
}

/// E5 — Prop 5: satisfiability of non-deterministic (eq-pair-free) JNL via
/// the Theorem 2 route.
fn e5() {
    header(
        "E5",
        "Prop 5 — nondeterministic JNL satisfiability through JSL (PSPACE route)",
    );
    println!("{}", row(&["formula".into(), "result".into(), "ms".into()]));
    let cases: Vec<(&str, jnl::Unary)> = vec![
        (
            "[X_{a(b|c)a}]T",
            jnl::parse_unary(r#"[@/a(b|c)a/]"#).unwrap(),
        ),
        (
            "box-empty + diamond",
            jnl::parse_unary(r#"![@/.*/ ; <true>] & [@/x+/]"#).unwrap(),
        ),
        (
            "regex clash",
            jnl::parse_unary(r#"[@/a+/ ; <[@0]>] & ![@/a/ ; <[@0]>] & ![@/aa+/ ; <true>]"#)
                .unwrap(),
        ),
        (
            "range demands",
            jnl::parse_unary(r#"[@[3:5]] & ![@[0:*] ; <[@"k"]>]"#).unwrap(),
        ),
    ];
    for (label, phi) in cases {
        let t0 = std::time::Instant::now();
        let result = match jsl::jnl_to_jsl_cps(&phi) {
            Ok(psi) => match jsl::sat_jsl(&psi) {
                jsl::JslSatResult::Sat(w) => format!("SAT {w}"),
                jsl::JslSatResult::Unsat => "UNSAT".into(),
                jsl::JslSatResult::Unknown(_) => "UNKNOWN".into(),
            },
            Err(e) => format!("untranslatable: {e}"),
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{}", row(&[label.into(), result, format!("{ms:.1}")]));
    }
}

/// E6 — Thm 2: translation sizes on the blowup family.
fn e6() {
    header(
        "E6",
        "Thm 2 — JNL->JSL translation size on the <[X_a]|[X_b]> chain family",
    );
    println!(
        "{}",
        row(&[
            "k".into(),
            "paper-lit".into(),
            "path-expand".into(),
            "cps".into()
        ])
    );
    for k in 1..=12 {
        let phi = jsl::translate::blowup_family(k);
        let paper = jsl::jnl_to_jsl_paper(&phi).unwrap().size();
        let paths = jsl::jnl_to_jsl_paths(&phi).unwrap().size();
        let cps = jsl::jnl_to_jsl_cps(&phi).unwrap().size();
        println!(
            "{}",
            row(&[
                k.to_string(),
                paper.to_string(),
                paths.to_string(),
                cps.to_string()
            ])
        );
    }
    println!("shape check: path-expansion doubles per step (exponential, the paper's remark);");
    println!(
        "the literal appendix construction and the CPS variant stay linear (see EXPERIMENTS.md)."
    );
}

/// E7 — Prop 6: JSL evaluation; Unique ablation.
fn e7() {
    header(
        "E7",
        "Prop 6 — JSL evaluation: Unique naive-pairwise (quadratic) vs canonical",
    );
    use jsl::{EvalOptions, UniqueStrategy};
    let phi = e7_formula();
    println!(
        "{}",
        row(&["array len".into(), "naive ms".into(), "canonical ms".into()])
    );
    let mut naive_pts = Vec::new();
    let mut canon_pts = Vec::new();
    for exp in [8, 9, 10, 11, 12, 13] {
        let n = 1usize << exp;
        // All-distinct array: the worst case for the pairwise scan (no
        // early duplicate short-circuits it).
        let doc = jsondata::gen::wide_array(n);
        let _ = e7_doc;
        let tree = JsonTree::build(&doc);
        let naive = time_ms(1, || {
            jsl::eval::evaluate_with(
                &tree,
                &phi,
                EvalOptions {
                    unique: UniqueStrategy::NaivePairwise,
                    ..Default::default()
                },
            )
        });
        let canon = time_ms(3, || {
            jsl::eval::evaluate_with(
                &tree,
                &phi,
                EvalOptions {
                    unique: UniqueStrategy::Canonical,
                    ..Default::default()
                },
            )
        });
        naive_pts.push((n as f64, naive));
        canon_pts.push((n as f64, canon));
        println!(
            "{}",
            row(&[n.to_string(), format!("{naive:.2}"), format!("{canon:.2}")])
        );
    }
    println!(
        "fitted exponents — naive (claim ~2): {:.2}, canonical (claim ~1): {:.2}",
        loglog_slope(&naive_pts),
        loglog_slope(&canon_pts)
    );
}

/// E8 — Prop 7: JSL satisfiability on the QBF reduction.
fn e8() {
    header(
        "E8",
        "Prop 7 — JSL satisfiability on QBF instances (PSPACE-hard family)",
    );
    use jsl::reduce::qbf::{Qbf, Quant};
    use rand::{Rng, SeedableRng};
    println!(
        "{}",
        row(&[
            "vars".into(),
            "oracle".into(),
            "via JSL".into(),
            "ms".into()
        ])
    );
    for n in 1..=5usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let prefix: Vec<Quant> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Quant::Exists
                } else {
                    Quant::Forall
                }
            })
            .collect();
        let clauses: Vec<Vec<(usize, bool)>> = (0..n + 1)
            .map(|_| {
                (0..2)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let q = Qbf { prefix, clauses };
        let oracle = q.brute_force();
        let t0 = std::time::Instant::now();
        let got = q.solve_via_jsl();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{}",
            row(&[
                n.to_string(),
                oracle.to_string(),
                got.map(|b| b.to_string())
                    .unwrap_or_else(|| "unknown".into()),
                format!("{ms:.1}"),
            ])
        );
    }
}

/// E9 — Prop 9: recursive JSL evaluation, PTIME vs the unfold baseline.
fn e9() {
    header(
        "E9",
        "Prop 9 — recursive JSL: PTIME bottom-up vs exponential unfold",
    );
    let delta = e9_even_depth();
    println!(
        "{}",
        row(&[
            "height".into(),
            "|J|".into(),
            "ptime ms".into(),
            "unfold |phi|".into(),
            "unfold ms".into()
        ])
    );
    for h in [2usize, 4, 6, 8, 10] {
        let doc = e9_doc(h, 2);
        let tree = JsonTree::build(&doc);
        let fast = time_ms(3, || delta.evaluate(&tree));
        let (usize_str, unfold_ms) = match delta.unfold(tree.height(), 2_000_000) {
            Some(unfolded) => {
                let ms = time_ms(1, || jsl::eval::evaluate(&tree, &unfolded));
                (unfolded.size().to_string(), format!("{ms:.2}"))
            }
            None => ("> 2e6 (budget)".into(), "-".into()),
        };
        println!(
            "{}",
            row(&[
                h.to_string(),
                tree.node_count().to_string(),
                format!("{fast:.2}"),
                usize_str,
                unfold_ms,
            ])
        );
    }
    // Circuit encodings: definitions count sweep.
    use jsl::reduce::circuit::{Circuit, Gate};
    println!("{}", row(&["gates".into(), "ptime ms".into()]));
    for depth in [64usize, 128, 256, 512] {
        let mut gates = vec![Gate::Input(0)];
        for i in 0..depth {
            gates.push(Gate::Not(i));
        }
        let c = Circuit { n_inputs: 1, gates };
        let delta = c.to_recursive_jsl();
        let doc = c.input_doc(&[true]);
        let tree = JsonTree::build(&doc);
        let ms = time_ms(3, || delta.evaluate(&tree));
        println!("{}", row(&[depth.to_string(), format!("{ms:.2}")]));
    }
}

/// E10 — Prop 10: J-automata emptiness.
fn e10() {
    header(
        "E10",
        "Prop 10 — J-automata: membership, complement, emptiness",
    );
    let delta = e9_even_depth();
    let auto = jautomata::JAutomaton::from_recursive_jsl(&delta).unwrap();
    println!("automaton states: {}", auto.rules.len());
    let doc = e9_doc(6, 2);
    let tree = JsonTree::build(&doc);
    let ms = time_ms(3, || auto.accepts(&tree).unwrap());
    println!("membership on |J|={}: {ms:.2} ms", tree.node_count());
    let comp = auto.complement();
    let ms = time_ms(3, || comp.accepts(&tree).unwrap());
    println!("complement membership     : {ms:.2} ms");
    let t0 = std::time::Instant::now();
    let e = auto.is_empty(jsl::SatConfig::default());
    println!(
        "emptiness (with witness)  : {:?} in {:.1} ms",
        match &e {
            jautomata::Emptiness::NonEmpty(w) => format!("NonEmpty({w})"),
            other => format!("{other:?}"),
        },
        t0.elapsed().as_secs_f64() * 1e3
    );
    let t0 = std::time::Instant::now();
    let never = auto.intersect(&auto.complement());
    let e = never.is_empty(jsl::SatConfig {
        max_height: Some(5),
        ..Default::default()
    });
    println!(
        "emptiness of L ∩ ¬L       : {:?} in {:.1} ms",
        match e {
            jautomata::Emptiness::NonEmpty(_) => "BUG".to_owned(),
            other => format!("{other:?}"),
        },
        t0.elapsed().as_secs_f64() * 1e3
    );
}

/// E11 — Thm 1: schema ⇔ JSL differential.
fn e11() {
    header("E11", "Thm 1 — Schema <-> JSL differential agreement");
    let mut checked = 0usize;
    let mut agreed = 0usize;
    for seed in 0..400u64 {
        let examples: Vec<jsondata::Json> = (0..3)
            .map(|i| jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(seed * 3 + i, 60)))
            .collect();
        let schema = jschema::infer(&examples);
        let delta = jschema::schema_to_jsl(&schema).unwrap();
        for probe_seed in 0..5u64 {
            let probe = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(
                9_000 + seed * 5 + probe_seed,
                40,
            ));
            let via_schema = jschema::is_valid(&schema, &probe).unwrap();
            let via_jsl = delta.check_root(&JsonTree::build(&probe));
            checked += 1;
            if via_schema == via_jsl {
                agreed += 1;
            }
        }
    }
    println!(
        "document/schema pairs checked: {checked}; agreement: {agreed} ({:.1}%)",
        100.0 * agreed as f64 / checked as f64
    );
}

/// E12 — Thm 3: recursive schema ⇔ recursive JSL differential.
fn e12() {
    header(
        "E12",
        "Thm 3 — recursive Schema <-> recursive JSL (cons-list family)",
    );
    let schema = jschema::Schema::parse_str(
        r##"{
        "definitions": {
            "list": {"type": "object", "anyOf": [
                {"maxProperties": 0},
                {"required": ["head", "tail"],
                 "properties": {"head": {"type": "number"},
                                 "tail": {"$ref": "#/definitions/list"}}}
            ]}
        },
        "$ref": "#/definitions/list"
    }"##,
    )
    .unwrap();
    let delta = jschema::schema_to_jsl(&schema).unwrap();
    let mut agreed = 0;
    let mut checked = 0;
    // Deep lists plus random probes.
    let mut list = jsondata::Json::empty_object();
    for i in 0..40u64 {
        checked += 1;
        let v = jschema::is_valid(&schema, &list).unwrap();
        let j = delta.check_root(&JsonTree::build(&list));
        if v == j {
            agreed += 1;
        }
        list = jsondata::Json::object(vec![
            ("head".into(), jsondata::Json::Num(i)),
            ("tail".into(), list),
        ])
        .unwrap();
    }
    for seed in 0..200u64 {
        let probe = jsondata::gen::random_json(&jsondata::gen::GenConfig::sized(seed, 30));
        checked += 1;
        let v = jschema::is_valid(&schema, &probe).unwrap();
        let j = delta.check_root(&JsonTree::build(&probe));
        if v == j {
            agreed += 1;
        }
    }
    println!(
        "documents checked: {checked}; agreement: {agreed} ({:.1}%)",
        100.0 * agreed as f64 / checked as f64
    );
}

/// T1 — the Table 1 keyword coverage matrix.
fn t1() {
    header(
        "T1",
        "Table 1 — keyword coverage (validator + Thm 1 translation)",
    );
    let cases: Vec<(&str, &str, &str, bool)> = vec![
        ("type(string)", r#"{"type": "string"}"#, r#""x""#, true),
        (
            "pattern",
            r#"{"type": "string", "pattern": "(0|1)+"}"#,
            r#""01""#,
            true,
        ),
        ("type(number)", r#"{"type": "number"}"#, "5", true),
        (
            "multipleOf",
            r#"{"type": "number", "multipleOf": 4}"#,
            "12",
            true,
        ),
        ("minimum", r#"{"type": "number", "minimum": 3}"#, "2", false),
        ("maximum", r#"{"type": "number", "maximum": 3}"#, "4", false),
        ("type(object)", r#"{"type": "object"}"#, "{}", true),
        (
            "required",
            r#"{"type": "object", "required": ["k"]}"#,
            "{}",
            false,
        ),
        (
            "minProperties",
            r#"{"type": "object", "minProperties": 1}"#,
            "{}",
            false,
        ),
        (
            "maxProperties",
            r#"{"type": "object", "maxProperties": 0}"#,
            "{}",
            true,
        ),
        (
            "properties",
            r#"{"type": "object", "properties": {"k": {"type": "number"}}}"#,
            r#"{"k": "s"}"#,
            false,
        ),
        (
            "patternProperties",
            r#"{"type": "object", "patternProperties": {"a(b|c)a": {"type": "number"}}}"#,
            r#"{"aba": 1}"#,
            true,
        ),
        (
            "additionalProperties",
            r#"{"type": "object", "properties": {"k": {}}, "additionalProperties": {"type": "number"}}"#,
            r#"{"k": 1, "z": "s"}"#,
            false,
        ),
        (
            "items",
            r#"{"type": "array", "items": [{"type": "number"}]}"#,
            "[1]",
            true,
        ),
        (
            "additionalItems",
            r#"{"type": "array", "items": [{}], "additionalItems": {"type": "number"}}"#,
            r#"[1, "s"]"#,
            false,
        ),
        (
            "uniqueItems",
            r#"{"type": "array", "uniqueItems": "true"}"#,
            "[1, 1]",
            false,
        ),
        (
            "anyOf",
            r#"{"anyOf": [{"type": "number"}, {"type": "string"}]}"#,
            "{}",
            false,
        ),
        (
            "allOf",
            r#"{"allOf": [{"type": "number"}, {"minimum": 2}]}"#,
            "3",
            true,
        ),
        (
            "not",
            r#"{"not": {"type": "number", "multipleOf": 2}}"#,
            "3",
            true,
        ),
        ("enum", r#"{"enum": [1, "a"]}"#, r#""a""#, true),
    ];
    println!(
        "{}",
        row(&[
            "keyword".into(),
            "validator".into(),
            "Thm1-JSL".into(),
            "agree".into()
        ])
    );
    let mut all_agree = true;
    for (kw, schema_src, doc_src, expected) in cases {
        let schema = jschema::Schema::parse_str(schema_src).unwrap();
        let doc = jsondata::parse(doc_src).unwrap();
        let v = jschema::is_valid(&schema, &doc).unwrap();
        let delta = jschema::schema_to_jsl(&schema).unwrap();
        let j = delta.check_root(&JsonTree::build(&doc));
        let agree = v == j && v == expected;
        all_agree &= agree;
        println!(
            "{}",
            row(&[kw.into(), v.to_string(), j.to_string(), agree.to_string()])
        );
    }
    println!("all Table 1 keywords agree: {all_agree}");
}

/// S1 — the §4.1 systems survey: dialects vs their JNL compilations.
fn s1() {
    header(
        "S1",
        "§4.1 — MongoDB find & JSONPath agree with their JNL compilations",
    );
    let people = jsondata::gen::person_records(20_000, 7);
    let coll = mongofind::Collection::from_array(&people).unwrap();
    let filter =
        mongofind::Filter::parse_str(r#"{"name.first": {"$eq": "Sue"}, "hobbies": {"$size": 2}}"#)
            .unwrap();
    let t0 = std::time::Instant::now();
    let direct = coll.find(&filter).len();
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let via_jnl = coll.find_via_jnl(&filter).len();
    let jnl_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("mongo find over 20k docs: direct {direct} hits ({direct_ms:.1} ms), JNL {via_jnl} hits ({jnl_ms:.1} ms), agree: {}", direct == via_jnl);

    let store = scaling_doc(5_000, 11);
    let tree = JsonTree::build(&store);
    for path in ["$..a", "$..items[*]", "$.*"] {
        let p = jsonpath::JsonPath::parse(path).unwrap();
        let mut a = p.select_nodes(&tree);
        let mut b = p.select_nodes_via_jnl(&tree);
        a.sort();
        b.sort();
        println!("jsonpath {path}: {} hits, JNL agrees: {}", a.len(), a == b);
    }
}

/// S2 — the interning experiment: `Sym`-based hot paths vs the frozen
/// pre-interning string implementations (`bench::baseline`), emitting the
/// machine-readable `BENCH_interning.json` that tracks the perf trajectory
/// from this change onward.
fn s2() {
    header(
        "S2",
        "Interning — Sym hot paths vs pre-interning string baseline",
    );

    // --- key lookup: hit and miss over a wide object ---
    let n_keys = 4096usize;
    let obj = jsondata::gen::wide_object(n_keys);
    let tree = JsonTree::build(&obj);
    let index = bench::baseline::StringChildIndex::build(&tree);
    let root = tree.root();
    let hits: Vec<String> = (0..n_keys).map(|i| format!("k{i}")).collect();
    let misses: Vec<String> = (0..n_keys).map(|i| format!("m{i}")).collect();
    let count = |keys: &[String], f: &dyn Fn(&str) -> Option<jsondata::NodeId>| {
        keys.iter().filter(|k| f(k).is_some()).count()
    };
    assert_eq!(count(&hits, &|k| tree.child_by_key(root, k)), n_keys);
    assert_eq!(count(&hits, &|k| index.child_by_key(root, k)), n_keys);
    assert_eq!(count(&misses, &|k| tree.child_by_key(root, k)), 0);
    let per_ns = |ms: f64| ms * 1e6 / n_keys as f64;
    let hit_new = per_ns(time_ms(9, || count(&hits, &|k| tree.child_by_key(root, k))));
    let hit_old = per_ns(time_ms(9, || {
        count(&hits, &|k| index.child_by_key(root, k))
    }));
    let miss_new = per_ns(time_ms(9, || {
        count(&misses, &|k| tree.child_by_key(root, k))
    }));
    let miss_old = per_ns(time_ms(9, || {
        count(&misses, &|k| index.child_by_key(root, k))
    }));
    println!(
        "{}",
        row(&[
            "lookup".into(),
            "baseline ns".into(),
            "interned ns".into(),
            "speedup".into()
        ])
    );
    println!(
        "{}",
        row(&[
            "hit".into(),
            format!("{hit_old:.1}"),
            format!("{hit_new:.1}"),
            format!("{:.2}x", hit_old / hit_new)
        ])
    );
    println!(
        "{}",
        row(&[
            "miss".into(),
            format!("{miss_old:.1}"),
            format!("{miss_new:.1}"),
            format!("{:.2}x", miss_old / miss_new)
        ])
    );

    // --- E1: deterministic JNL evaluation throughput ---
    let phi = e1_formula();
    let doc = scaling_doc(1 << 14, 1);
    let e1_tree = JsonTree::build(&doc);
    let e1_nodes = e1_tree.node_count();
    let e1_index = bench::baseline::StringChildIndex::build(&e1_tree);
    assert_eq!(
        bench::baseline::linear_eval_strings(&e1_tree, &e1_index, &phi),
        jnl::eval::linear::eval(&e1_tree, &phi).unwrap(),
        "baseline and interned E1 engines must agree"
    );
    let e1_old = time_ms(9, || {
        bench::baseline::linear_eval_strings(&e1_tree, &e1_index, &phi)
    });
    let e1_new = time_ms(9, || jnl::eval::linear::eval(&e1_tree, &phi).unwrap());
    let e1_speedup = e1_old / e1_new;

    // --- E7: JSL Arr ∧ Unique (canonical strategy) throughput ---
    use jsl::{EvalOptions, UniqueStrategy};
    let e7_len = 8192usize;
    let e7_doc = jsondata::gen::wide_array(e7_len);
    let e7_tree = JsonTree::build(&e7_doc);
    let e7_phi = e7_formula();
    let canonical = EvalOptions {
        unique: UniqueStrategy::Canonical,
        ..Default::default()
    };
    assert_eq!(
        bench::baseline::e7_canonical_strings(&e7_tree),
        jsl::eval::evaluate_with(&e7_tree, &e7_phi, canonical),
        "baseline and interned E7 evaluations must agree"
    );
    let e7_old = time_ms(9, || bench::baseline::e7_canonical_strings(&e7_tree));
    let e7_new = time_ms(9, || jsl::eval::evaluate_with(&e7_tree, &e7_phi, canonical));
    let e7_speedup = e7_old / e7_new;

    println!(
        "{}",
        row(&[
            "eval".into(),
            "baseline ms".into(),
            "interned ms".into(),
            "speedup".into()
        ])
    );
    println!(
        "{}",
        row(&[
            format!("E1 |J|={e1_nodes}"),
            format!("{e1_old:.2}"),
            format!("{e1_new:.2}"),
            format!("{e1_speedup:.2}x")
        ])
    );
    println!(
        "{}",
        row(&[
            format!("E7 len={e7_len}"),
            format!("{e7_old:.2}"),
            format!("{e7_new:.2}"),
            format!("{e7_speedup:.2}x")
        ])
    );

    let json = format!(
        "{{\n  \"experiment\": \"s2_interning\",\n  \"units\": {{\"lookup\": \"ns_per_lookup\", \"eval\": \"ms_per_eval\"}},\n  \"key_lookup\": {{\n    \"object_keys\": {n_keys},\n    \"hit\": {{\"baseline\": {hit_old:.2}, \"interned\": {hit_new:.2}, \"speedup\": {:.3}}},\n    \"miss\": {{\"baseline\": {miss_old:.2}, \"interned\": {miss_new:.2}, \"speedup\": {:.3}}}\n  }},\n  \"e1_jnl_eval\": {{\"nodes\": {e1_nodes}, \"baseline\": {e1_old:.3}, \"interned\": {e1_new:.3}, \"speedup\": {e1_speedup:.3}}},\n  \"e7_jsl_eval\": {{\"array_len\": {e7_len}, \"baseline\": {e7_old:.3}, \"interned\": {e7_new:.3}, \"speedup\": {e7_speedup:.3}}}\n}}\n",
        hit_old / hit_new,
        miss_old / miss_new,
    );
    std::fs::write("BENCH_interning.json", &json).expect("write BENCH_interning.json");
    println!("wrote BENCH_interning.json");
}

/// S3 — the DFA-bitset experiment: regex edge matching through precomputed
/// symbol bitsets vs the lazy per-symbol memo tier vs the frozen
/// per-node-visit string baseline, on regex-heavy E1/E7-style workloads
/// over high-distinct-key trees. Asserts exact three-way agreement (the
/// deterministic CI gate) and emits `BENCH_dfa_bitset.json`.
fn s3() {
    header(
        "S3",
        "DFA symbol bitsets — bitset vs lazy memo vs per-node string baseline",
    );
    use relex::EdgeStrategy;

    // --- E1-style: JNL regex navigation, 4096 objects × 8 keys, all 32k
    // keys distinct ---
    let (n_objects, keys_each) = (4096usize, 8usize);
    let n_keys = n_objects * keys_each;
    let doc = s3_jnl_doc(n_objects, keys_each);
    let tree = JsonTree::build(&doc);
    let (e, phi) = s3_jnl_workload();
    let jnl_strings = bench::baseline::exists_regex_edge_strings(&tree, &e);
    let jnl_memo = jnl::eval::pdl::eval_with(&tree, &phi, EdgeStrategy::LazyMemo).unwrap();
    let jnl_bits = jnl::eval::pdl::eval_with(&tree, &phi, EdgeStrategy::DfaBitset).unwrap();
    assert_eq!(jnl_strings, jnl_memo, "E1 memo tier disagrees with strings");
    assert_eq!(jnl_memo, jnl_bits, "E1 bitset tier disagrees with memo");
    let e1_str = time_ms(5, || bench::baseline::exists_regex_edge_strings(&tree, &e));
    let e1_memo = time_ms(5, || {
        jnl::eval::pdl::eval_with(&tree, &phi, EdgeStrategy::LazyMemo).unwrap()
    });
    let e1_bits = time_ms(5, || {
        jnl::eval::pdl::eval_with(&tree, &phi, EdgeStrategy::DfaBitset).unwrap()
    });

    // --- E7-style: JSL patternProperties over 32k keys + 32k string atoms ---
    let n_props = 32_768usize;
    let jsl_doc = s3_doc(n_props);
    let jsl_tree = JsonTree::build(&jsl_doc);
    let psi = s3_jsl_formula();
    use jsl::EvalOptions;
    let memo_opts = EvalOptions {
        edge: EdgeStrategy::LazyMemo,
        ..Default::default()
    };
    let bits_opts = EvalOptions {
        edge: EdgeStrategy::DfaBitset,
        ..Default::default()
    };
    let jsl_strings = bench::baseline::jsl_eval_strings(&jsl_tree, &psi);
    let jsl_memo = jsl::eval::evaluate_with(&jsl_tree, &psi, memo_opts);
    let jsl_bits = jsl::eval::evaluate_with(&jsl_tree, &psi, bits_opts);
    assert_eq!(jsl_strings, jsl_memo, "E7 memo tier disagrees with strings");
    assert_eq!(jsl_memo, jsl_bits, "E7 bitset tier disagrees with memo");
    let e7_str = time_ms(5, || bench::baseline::jsl_eval_strings(&jsl_tree, &psi));
    let e7_memo = time_ms(5, || jsl::eval::evaluate_with(&jsl_tree, &psi, memo_opts));
    let e7_bits = time_ms(5, || jsl::eval::evaluate_with(&jsl_tree, &psi, bits_opts));

    println!(
        "{}",
        row(&[
            "eval".into(),
            "strings ms".into(),
            "memo ms".into(),
            "bitset ms".into(),
            "bitset/memo".into(),
        ])
    );
    println!(
        "{}",
        row(&[
            format!("E1 keys={n_keys}"),
            format!("{e1_str:.2}"),
            format!("{e1_memo:.2}"),
            format!("{e1_bits:.2}"),
            format!("{:.2}x", e1_memo / e1_bits),
        ])
    );
    println!(
        "{}",
        row(&[
            format!("E7 props={n_props}"),
            format!("{e7_str:.2}"),
            format!("{e7_memo:.2}"),
            format!("{e7_bits:.2}"),
            format!("{:.2}x", e7_memo / e7_bits),
        ])
    );

    let json = format!(
        "{{\n  \"experiment\": \"s3_dfa_bitset\",\n  \"units\": \"ms_per_eval\",\n  \"agreement\": \"asserted: strings == memo == bitset on both workloads\",\n  \"e1_jnl_regex_nav\": {{\"distinct_keys\": {n_keys}, \"strings\": {e1_str:.3}, \"memo\": {e1_memo:.3}, \"bitset\": {e1_bits:.3}, \"bitset_vs_memo\": {:.3}, \"bitset_vs_strings\": {:.3}}},\n  \"e7_jsl_pattern_props\": {{\"properties\": {n_props}, \"strings\": {e7_str:.3}, \"memo\": {e7_memo:.3}, \"bitset\": {e7_bits:.3}, \"bitset_vs_memo\": {:.3}, \"bitset_vs_strings\": {:.3}}}\n}}\n",
        e1_memo / e1_bits,
        e1_str / e1_bits,
        e7_memo / e7_bits,
        e7_str / e7_bits,
    );
    std::fs::write("BENCH_dfa_bitset.json", &json).expect("write BENCH_dfa_bitset.json");
    println!("wrote BENCH_dfa_bitset.json");
}

/// S4 — the parser→tree fusion experiment: the fused `parse_to_tree`
/// single pass vs the two-pass `parse` + `JsonTree::build` pipeline, on the
/// large-document workloads. Two deterministic gates run inside the
/// harness: the fused tree must be node-for-node identical to the two-pass
/// tree (arena layout + symbol table), and the fused path must not be
/// slower. Wall times plus allocation profiles (calls, peak live bytes —
/// the "intermediate `Json`" cost fusion removes) land in
/// `BENCH_parse_fusion.json`.
fn s4() {
    header(
        "S4",
        "Parser→tree fusion — fused parse_to_tree vs parse + JsonTree::build",
    );
    println!(
        "{}",
        row(&[
            "workload".into(),
            "MB".into(),
            "nodes".into(),
            "two-pass ms".into(),
            "fused ms".into(),
            "speedup".into(),
            "allocs 2p/fused".into(),
            "peak MB 2p/fused".into(),
        ])
    );
    let mut entries = Vec::new();
    for (label, src) in s4_workloads() {
        // Deterministic gate 1: node-for-node identity (layout + symbols
        // + canon signatures).
        let fused = jsondata::parse_to_tree(&src).expect("workload parses");
        let doc = jsondata::parse(&src).expect("workload parses");
        let two_pass = JsonTree::build(&doc);
        assert!(
            fused.identical(&two_pass),
            "S4 gate: fused tree differs from two-pass on {label}"
        );
        assert_eq!(
            jsondata::CanonTable::build(&fused).classes(),
            jsondata::CanonTable::build(&two_pass).classes(),
            "S4 gate: canon classes differ on {label}"
        );
        let nodes = fused.node_count();
        drop((fused, two_pass, doc));

        let two_ms = time_ms(9, || {
            let doc = jsondata::parse(&src).expect("parses");
            JsonTree::build(&doc)
        });
        let fused_ms = time_ms(9, || jsondata::parse_to_tree(&src).expect("parses"));
        let (t, fused_prof) = memtrack::measure(|| jsondata::parse_to_tree(&src).unwrap());
        drop(t);
        let (t, two_prof) = memtrack::measure(|| {
            let doc = jsondata::parse(&src).unwrap();
            JsonTree::build(&doc)
        });
        drop(t);

        // Deterministic gate 2: the fused path must not be slower than the
        // two-pass pipeline it replaces (it does strictly less work; the
        // observed margin is recorded in the JSON for trend tracking).
        assert!(
            fused_ms <= two_ms,
            "S4 gate: fused path slower than two-pass on {label}: {fused_ms:.2} ms vs {two_ms:.2} ms"
        );

        let mb = src.len() as f64 / (1024.0 * 1024.0);
        println!(
            "{}",
            row(&[
                label.into(),
                format!("{mb:.1}"),
                nodes.to_string(),
                format!("{two_ms:.2}"),
                format!("{fused_ms:.2}"),
                format!("{:.2}x", two_ms / fused_ms),
                format!("{}/{}", two_prof.allocs, fused_prof.allocs),
                format!(
                    "{:.1}/{:.1}",
                    two_prof.peak_bytes as f64 / (1024.0 * 1024.0),
                    fused_prof.peak_bytes as f64 / (1024.0 * 1024.0)
                ),
            ])
        );
        entries.push(format!(
            "    {{\"workload\": \"{label}\", \"bytes\": {}, \"nodes\": {nodes}, \"two_pass_ms\": {two_ms:.3}, \"fused_ms\": {fused_ms:.3}, \"speedup\": {:.3}, \"two_pass_allocs\": {}, \"fused_allocs\": {}, \"two_pass_peak_bytes\": {}, \"fused_peak_bytes\": {}}}",
            src.len(),
            two_ms / fused_ms,
            two_prof.allocs,
            fused_prof.allocs,
            two_prof.peak_bytes,
            fused_prof.peak_bytes,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"s4_parse_fusion\",\n  \"units\": {{\"time\": \"ms_per_parse (median of 9)\", \"allocs\": \"heap allocation calls per parse\", \"peak_bytes\": \"peak live heap bytes above entry\"}},\n  \"gates\": \"asserted: fused tree identical to two-pass (layout + symbols + canon); fused_ms <= two_pass_ms\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_parse_fusion.json", &json).expect("write BENCH_parse_fusion.json");
    println!("wrote BENCH_parse_fusion.json");
}

/// S5 — the aggregation experiment: the `jagg` tree-backed pipeline
/// executor (cursor rows + overlay bindings over the collection's tree
/// column) vs the naive value-based reference executor, on a 20k-record
/// collection. Two deterministic gates run inside the harness: both
/// executors must produce identical output documents on every pipeline,
/// and the tree executor must not be slower than the reference it
/// subsumes (the reference clones every document into owned rows before
/// it can do anything — exactly the cost the tree executor avoids).
/// Wall times land in `BENCH_aggregate.json`.
fn s5() {
    header(
        "S5",
        "Aggregation — jagg tree executor vs naive value-based reference",
    );
    let text = s5_collection_text();
    let coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    // Materialise the reference's document vector up front so its timed
    // region measures pipeline execution, not the docs() cache fill.
    let docs = coll.docs().to_vec();
    println!(
        "collection: {} documents, {} tree nodes, {} symbols",
        coll.len(),
        coll.tree().node_count(),
        coll.interner().len()
    );
    println!(
        "{}",
        row(&[
            "pipeline".into(),
            "out docs".into(),
            "reference ms".into(),
            "tree ms".into(),
            "speedup".into(),
        ])
    );
    let mut entries = Vec::new();
    for (label, src) in s5_pipelines() {
        let pipe = jagg::Pipeline::parse_str(src).expect("workload pipeline parses");
        // Deterministic gate 1: output-for-output agreement.
        let via_tree = jagg::aggregate(&coll, &pipe);
        let via_value = jagg::reference::aggregate(&docs, &pipe);
        assert_eq!(
            via_tree, via_value,
            "S5 gate: tree executor disagrees with the value reference on {label}"
        );
        let out_docs = via_tree.len();
        drop((via_tree, via_value));

        let ref_ms = time_ms(9, || jagg::reference::aggregate(&docs, &pipe));
        let tree_ms = time_ms(9, || jagg::aggregate(&coll, &pipe));
        // Deterministic gate 2: the tree executor must not be slower than
        // the naive reference (it does strictly less copying; the margin
        // is recorded for trend tracking).
        assert!(
            tree_ms <= ref_ms,
            "S5 gate: tree executor slower than the value reference on {label}: {tree_ms:.2} ms vs {ref_ms:.2} ms"
        );
        println!(
            "{}",
            row(&[
                label.into(),
                out_docs.to_string(),
                format!("{ref_ms:.2}"),
                format!("{tree_ms:.2}"),
                format!("{:.2}x", ref_ms / tree_ms),
            ])
        );
        entries.push(Val::obj(vec![
            ("pipeline", Val::str(label)),
            ("output_docs", Val::int(out_docs as u64)),
            ("reference_ms", Val::float(ref_ms, 3)),
            ("tree_ms", Val::float(tree_ms, 3)),
            ("speedup", Val::float(ref_ms / tree_ms, 3)),
        ]));
    }
    let report = Val::obj(vec![
        ("experiment", Val::str("s5_aggregate")),
        ("units", Val::str("ms_per_pipeline (median of 9)")),
        (
            "collection",
            Val::obj(vec![
                ("documents", Val::int(coll.len() as u64)),
                ("tree_nodes", Val::int(coll.tree().node_count() as u64)),
                ("symbols", Val::int(coll.interner().len() as u64)),
            ]),
        ),
        (
            "gates",
            Val::str(
                "asserted: tree output == reference output on every pipeline; \
                 tree_ms <= reference_ms",
            ),
        ),
        ("pipelines", Val::Arr(entries)),
    ]);
    jsonout::write("BENCH_aggregate.json", &report);
}

/// S6 — the parallel-execution experiment: the pool-driven find/aggregate
/// paths over the 20k-record collection at 1 thread vs the machine's
/// maximum, plus the fragmented (one segment per insert) vs compacted
/// segment layouts. Deterministic gates inside the harness:
///
/// 1. parallel output must be **byte-identical** to sequential on every
///    workload (the `jpar` chunk-splicing contract);
/// 2. parallel wall time at max threads must not exceed sequential — with
///    a small documented tolerance when the machine exposes only one CPU,
///    where the "parallel" run degenerates to the identical serial
///    fallback and the comparison is pure timer noise;
/// 3. after `Collection::compact()`, the per-segment JNL scan must be at
///    least as fast as on the fragmented layout it replaces (the
///    fragmented run pays one whole-tree evaluation per segment), with
///    identical results.
fn s6() {
    header(
        "S6",
        "Parallel execution — 1 vs max threads over the pool-driven query paths + compaction",
    );
    let max_threads = jpar::Pool::auto().threads();
    let hw_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The wall-clock gate is strict (parallel ≤ sequential) only when real
    // hardware parallelism backs the pool — there the expected margin is a
    // multiple, not a rounding error. With one thread the "parallel" run
    // IS the serial fallback, and with an oversubscribed JPAR_THREADS the
    // run measures pure dispatch overhead; both compare near-identical
    // work, so only noise (25%) is tolerated, not required wins.
    let tolerance = if max_threads > 1 && max_threads <= hw_threads {
        1.0
    } else {
        1.25
    };
    println!(
        "pool: {max_threads} thread(s) over {hw_threads} hardware thread(s), gate tolerance {tolerance}x"
    );
    // One timed run. The sequential/parallel comparison interleaves
    // single samples and keeps each side's best: back-to-back sample
    // blocks drift with allocator and scheduler state (the later block
    // measures consistently slower even on identical code paths), and
    // interleaving cancels that drift while best-of-N rejects load spikes.
    fn once_ms<T>(f: impl FnOnce() -> T) -> f64 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        t0.elapsed().as_secs_f64() * 1e3
    }
    // Best-of-N for the compaction comparison, which cannot interleave
    // (compact() is one-way); its margin is large enough that drift does
    // not threaten the gate.
    fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
        (0..reps)
            .map(|_| once_ms(&mut f))
            .fold(f64::INFINITY, f64::min)
    }

    let text = s5_collection_text();
    let mut coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    let find_filter = mongofind::Filter::parse_str(S6_FIND_FILTER).expect("filter parses");
    println!(
        "collection: {} documents in {} segment(s), {} symbols",
        coll.len(),
        coll.segments().len(),
        coll.interner().len()
    );
    println!(
        "{}",
        row(&[
            "workload".into(),
            "out".into(),
            "1-thread ms".into(),
            "max ms".into(),
            "speedup".into(),
        ])
    );

    let mut entries = Vec::new();
    let mut measure =
        |label: &str,
         coll: &mut mongofind::Collection,
         run: &dyn Fn(&mongofind::Collection) -> Vec<jsondata::Json>| {
            coll.set_pool(jpar::Pool::serial());
            let seq_out = run(coll);
            coll.set_pool(jpar::Pool::with_threads(max_threads));
            let par_out = run(coll);
            // Gate 1: byte-identical output for every thread count.
            assert_eq!(
                par_out, seq_out,
                "S6 gate: parallel output differs from sequential on {label}"
            );
            let (mut seq_ms, mut par_ms) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..9 {
                coll.set_pool(jpar::Pool::serial());
                seq_ms = seq_ms.min(once_ms(|| run(coll)));
                coll.set_pool(jpar::Pool::with_threads(max_threads));
                par_ms = par_ms.min(once_ms(|| run(coll)));
            }
            // Gate 2: parallelism must not cost wall time at max threads.
            assert!(
            par_ms <= seq_ms * tolerance,
            "S6 gate: parallel slower than sequential on {label}: {par_ms:.2} ms vs {seq_ms:.2} ms"
        );
            println!(
                "{}",
                row(&[
                    label.into(),
                    par_out.len().to_string(),
                    format!("{seq_ms:.2}"),
                    format!("{par_ms:.2}"),
                    format!("{:.2}x", seq_ms / par_ms),
                ])
            );
            entries.push(format!(
            "    {{\"workload\": \"{label}\", \"output_docs\": {}, \"sequential_ms\": {seq_ms:.3}, \"parallel_ms\": {par_ms:.3}, \"speedup\": {:.3}}}",
            par_out.len(),
            seq_ms / par_ms,
        ));
        };

    measure("find_scan", &mut coll, &|c| c.find(&find_filter));
    for (label, src) in s6_pipelines() {
        let pipe = jagg::Pipeline::parse_str(src).expect("workload pipeline parses");
        measure(label, &mut coll, &move |c| jagg::aggregate(c, &pipe));
    }

    // --- compacted vs fragmented segment layout -----------------------
    let n_frag = 1000usize;
    let jnl_filter = mongofind::Filter::parse_str(S6_JNL_FILTER).expect("filter parses");
    let agg = jagg::Pipeline::parse_str(s6_pipelines()[1].1).expect("pipeline parses");
    let jsondata::Json::Array(docs) = jsondata::gen::person_records(n_frag, 7) else {
        panic!("person_records returns an array");
    };
    let mut frag = mongofind::Collection::parse_str("[]").expect("empty parses");
    for d in &docs {
        frag.insert_str(&jsondata::serialize::to_string(d))
            .expect("record parses");
    }
    frag.set_pool(jpar::Pool::with_threads(max_threads));
    let frag_segments = frag.segments().len();
    let frag_out = frag.find_via_jnl(&jnl_filter);
    let frag_jnl_ms = best_ms(9, || frag.find_via_jnl(&jnl_filter));
    let frag_agg_ms = best_ms(9, || jagg::aggregate(&frag, &agg));
    let frag_agg_out = jagg::aggregate(&frag, &agg);

    frag.compact();
    let comp_out = frag.find_via_jnl(&jnl_filter);
    let comp_jnl_ms = best_ms(9, || frag.find_via_jnl(&jnl_filter));
    let comp_agg_ms = best_ms(9, || jagg::aggregate(&frag, &agg));
    let comp_agg_out = jagg::aggregate(&frag, &agg);
    assert_eq!(
        comp_out, frag_out,
        "S6 gate: compaction changed find_via_jnl results"
    );
    assert_eq!(
        comp_agg_out, frag_agg_out,
        "S6 gate: compaction changed aggregate results"
    );
    // Gate 3: compaction must not slow the per-segment JNL scan down (the
    // fragmented layout pays one whole-tree evaluation per segment — here
    // 1001 of them — so the margin is enormous).
    assert!(
        comp_jnl_ms <= frag_jnl_ms,
        "S6 gate: compacted find_via_jnl slower than fragmented: {comp_jnl_ms:.2} ms vs {frag_jnl_ms:.2} ms"
    );
    println!(
        "compaction ({n_frag} inserts): find_via_jnl {frag_jnl_ms:.2} -> {comp_jnl_ms:.2} ms ({:.1}x), \
         unwind_group {frag_agg_ms:.2} -> {comp_agg_ms:.2} ms ({:.2}x), segments {frag_segments} -> {}",
        frag_jnl_ms / comp_jnl_ms,
        frag_agg_ms / comp_agg_ms,
        frag.segments().len(),
    );

    let json = format!(
        "{{\n  \"experiment\": \"s6_parallel\",\n  \"units\": \"ms (best of 9, sequential/parallel samples interleaved)\",\n  \"threads\": {{\"sequential\": 1, \"parallel\": {max_threads}, \"gate_tolerance\": {tolerance}}},\n  \"gates\": \"asserted: parallel output == sequential output on every workload; parallel_ms <= sequential_ms * tolerance at max threads; compacted find_via_jnl <= fragmented with identical results\",\n  \"collection\": {{\"documents\": {}, \"segments\": {}}},\n  \"workloads\": [\n{}\n  ],\n  \"compaction\": {{\"documents\": {n_frag}, \"segments_fragmented\": {frag_segments}, \"segments_compacted\": {}, \"fragmented_jnl_ms\": {frag_jnl_ms:.3}, \"compacted_jnl_ms\": {comp_jnl_ms:.3}, \"jnl_speedup\": {:.3}, \"fragmented_agg_ms\": {frag_agg_ms:.3}, \"compacted_agg_ms\": {comp_agg_ms:.3}, \"agg_speedup\": {:.3}}}\n}}\n",
        coll.len(),
        coll.segments().len(),
        entries.join(",\n"),
        frag.segments().len(),
        frag_jnl_ms / comp_jnl_ms,
        frag_agg_ms / comp_agg_ms,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

/// S7 — fault injection & resource governance over the serving-layer
/// query paths. Deterministic gates inside the harness:
///
/// 1. **Ingestion fails closed.** Every hostile-corpus text inserts under
///    explicit [`jsondata::ParseLimits`] with success or a structured
///    `ParseLimit` error — never a panic — and the collection stays
///    queryable; a pathological regex past the edge-DFA state cap falls
///    back to the lazy tier and still answers (governed run agreeing).
/// 2. **Bounded grace.** Cancelled, expired-deadline and zero-budget
///    queries return their structured error within `GRACE_MS` (500 ms).
/// 3. **Panic containment.** Injected fault panics at swept poll indices
///    surface as `WorkerPanicked` (payload tagged) or complete with
///    baseline-identical output; the pool and collection stay reusable
///    after every one.
/// 4. **Failure storm.** After 1000 injected failures (panics, starved
///    budgets, expired deadlines, cancellations) the plain find and
///    aggregate outputs are byte-identical to the pre-storm baselines.
/// 5. **Uncontended overhead.** A live context (far deadline) on the S6
///    workloads costs at most 2% wall clock over the ungoverned paths
///    (median of paired samples, plus a small epsilon for timer noise).
fn s7() {
    use std::time::{Duration, Instant};

    use jguard::{Fault, QueryCtx, QueryError, Resource, INJECTED_PANIC_MSG};

    header(
        "S7",
        "Fault injection & governance — structured failure, bounded grace, <=2% ctx overhead",
    );
    // Generous enough for the slowest legitimate path to the first charge
    // point (a byte budget only trips once something materialises, so a
    // leading whole-tree JNL match runs to completion first), tight enough
    // that a hung poll loop cannot hide.
    const GRACE_MS: f64 = 500.0;
    let max_threads = jpar::Pool::auto().threads();
    let text = s5_collection_text();
    let mut coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    coll.set_pool(jpar::Pool::with_threads(max_threads));
    let find_filter = mongofind::Filter::parse_str(S6_FIND_FILTER).expect("filter parses");
    let pipes: Vec<(&str, jagg::Pipeline)> = s6_pipelines()
        .into_iter()
        .map(|(label, src)| {
            (
                label,
                jagg::Pipeline::parse_str(src).expect("pipeline parses"),
            )
        })
        .collect();
    println!(
        "collection: {} documents, pool: {max_threads} thread(s)",
        coll.len()
    );

    // Pre-storm baselines every later gate compares against.
    let base_find = coll.find(&find_filter);
    let base_aggs: Vec<Vec<jsondata::Json>> = pipes
        .iter()
        .map(|(_, p)| jagg::aggregate(&coll, p))
        .collect();
    assert!(
        !base_find.is_empty(),
        "S7 setup: the find workload must select documents"
    );

    fn once_ms<T>(f: impl FnOnce() -> T) -> f64 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        t0.elapsed().as_secs_f64() * 1e3
    }

    // --- gate 1: hostile ingestion + pathological regex ---------------
    let limits = jsondata::ParseLimits {
        max_depth: 256,
        max_bytes: 8 << 20,
    };
    let mut scratch = mongofind::Collection::parse_str(r#"[{"a": 1}]"#).expect("seed parses");
    let (mut accepted, mut rejected) = (0u32, 0u32);
    for (label, hostile) in jsondata::gen::hostile_corpus(0xFA_17) {
        match scratch.insert_str_with_limits(&hostile, limits) {
            Ok(()) => accepted += 1,
            Err(QueryError::ParseLimit(_)) => rejected += 1,
            Err(e) => panic!("S7 gate: {label} raised a non-ingestion error: {e}"),
        }
    }
    assert!(
        rejected >= 4,
        "S7 gate: the caps must reject the worst corpus entries"
    );
    let scratch_filter = mongofind::Filter::parse_str(r#"{"a": {"$gte": 1}}"#).expect("parses");
    assert_eq!(
        scratch.find(&scratch_filter).len(),
        1,
        "S7 gate: collection not queryable after hostile ingestion"
    );
    // `(a|b)*a(a|b)^13` needs ~2^13 DFA states — past the edge-DFA cap,
    // so the evaluator must take the lazy fallback, not abort or stall.
    let blowup = format!("[@/(a|b)*a{}/]", "(a|b)".repeat(13));
    let phi = jnl::parse_unary(&blowup).expect("regex formula parses");
    let ab_doc = {
        let mut s = String::from("{");
        for i in 0..64u32 {
            if i > 0 {
                s.push(',');
            }
            let key: String = (0..14)
                .map(|b| if i >> (b % 6) & 1 == 0 { 'a' } else { 'b' })
                .collect();
            s.push_str(&format!("\"{i}_{key}\":0"));
        }
        s.push('}');
        s
    };
    let ab_tree = jsondata::parse_to_tree(&ab_doc).expect("ab doc parses");
    let plain_eval = jnl::evaluate(&ab_tree, &phi);
    let governed_eval = jnl::eval::evaluate_ctx(
        &ab_tree,
        &phi,
        &QueryCtx::new().with_timeout(Duration::from_secs(60)),
    )
    .expect("governed evaluation of the capped regex succeeds");
    assert_eq!(
        plain_eval, governed_eval,
        "S7 gate: governed regex evaluation diverged"
    );
    println!("ingestion: {accepted} accepted, {rejected} rejected, regex fallback ok");

    // --- gate 2: bounded grace -----------------------------------------
    let mut grace = Vec::new();
    {
        let cancelled = QueryCtx::new();
        cancelled.cancel();
        let ms = once_ms(|| {
            assert!(
                matches!(
                    coll.find_with_ctx(&find_filter, &cancelled),
                    Err(QueryError::Cancelled)
                ),
                "S7 gate: cancelled query did not return Cancelled"
            );
        });
        grace.push(("cancelled_find", ms));
        let expired = QueryCtx::new().with_timeout(Duration::ZERO);
        let ms = once_ms(|| {
            assert!(
                matches!(
                    jagg::aggregate_with_ctx(&coll, &pipes[0].1, &expired),
                    Err(QueryError::Deadline)
                ),
                "S7 gate: expired query did not return Deadline"
            );
        });
        grace.push(("expired_aggregate", ms));
        let no_rows = QueryCtx::new().with_row_budget(0);
        let ms = once_ms(|| {
            assert!(
                matches!(
                    coll.find_with_ctx(&find_filter, &no_rows),
                    Err(QueryError::BudgetExceeded {
                        resource: Resource::Rows
                    })
                ),
                "S7 gate: zero row budget did not return BudgetExceeded"
            );
        });
        grace.push(("row_budget_find", ms));
        let no_bytes = QueryCtx::new().with_byte_budget(1);
        let ms = once_ms(|| {
            assert!(
                matches!(
                    jagg::aggregate_with_ctx(&coll, &pipes[0].1, &no_bytes),
                    Err(QueryError::BudgetExceeded {
                        resource: Resource::Bytes
                    })
                ),
                "S7 gate: starved byte budget did not return BudgetExceeded"
            );
        });
        grace.push(("byte_budget_aggregate", ms));
        // A fault that sleeps inside one poll while the deadline expires:
        // the very next check must surface Deadline — the grace window is
        // one poll stride plus the injected stall.
        let slow = QueryCtx::new()
            .with_timeout(Duration::from_millis(10))
            .with_fault(Fault::SleepAtPoll { at: 2, millis: 80 });
        let ms = once_ms(|| {
            assert!(
                matches!(
                    coll.find_with_ctx(&find_filter, &slow),
                    Err(QueryError::Deadline)
                ),
                "S7 gate: slow-node fault did not surface Deadline"
            );
        });
        grace.push(("slow_node_find", ms - 80.0));
    }
    for (label, ms) in &grace {
        assert!(
            *ms <= GRACE_MS,
            "S7 gate: {label} took {ms:.1} ms to fail (grace {GRACE_MS} ms)"
        );
        println!("grace: {label} failed closed in {ms:.2} ms");
    }

    // --- gates 3+4: panic containment sweep, then the failure storm ----
    let (contained, storm_failures) = jguard::with_quiet_panics(|| {
        let mut contained = 0u32;
        for k in [1u64, 2, 3, 5, 8, 13, 21, 34, 55] {
            let ctx = QueryCtx::new().with_fault(Fault::PanicAtPoll(k));
            match coll.find_with_ctx(&find_filter, &ctx) {
                Ok(v) => assert_eq!(v, base_find, "S7 gate: fault-free run diverged at k={k}"),
                Err(QueryError::WorkerPanicked { payload, .. }) => {
                    assert!(
                        payload.contains(INJECTED_PANIC_MSG),
                        "S7 gate: foreign panic payload at k={k}: {payload}"
                    );
                    contained += 1;
                }
                Err(e) => panic!("S7 gate: injected panic surfaced as {e} at k={k}"),
            }
            let ctx = QueryCtx::new().with_fault(Fault::PanicAtPoll(k));
            match jagg::aggregate_with_ctx(&coll, &pipes[0].1, &ctx) {
                Ok(v) => assert_eq!(v, base_aggs[0], "S7 gate: aggregate diverged at k={k}"),
                Err(QueryError::WorkerPanicked { payload, .. }) => {
                    assert!(
                        payload.contains(INJECTED_PANIC_MSG),
                        "S7 gate: foreign panic payload at k={k}: {payload}"
                    );
                    contained += 1;
                }
                Err(e) => panic!("S7 gate: injected panic surfaced as {e} at k={k}"),
            }
            // Pool and tree column must be reusable immediately.
            assert_eq!(
                coll.find(&find_filter),
                base_find,
                "S7 gate: pool unusable after contained panic at k={k}"
            );
        }
        assert!(
            contained >= 2,
            "S7 gate: the poll sweep never hit a live poll"
        );

        let mut storm_failures = 0u32;
        for i in 0..1000u64 {
            let ctx = match i % 4 {
                0 => QueryCtx::new().with_fault(Fault::PanicAtPoll(1 + i % 7)),
                1 => QueryCtx::new().with_byte_budget(1),
                2 => QueryCtx::new().with_timeout(Duration::ZERO),
                _ => {
                    let c = QueryCtx::new();
                    c.cancel();
                    c
                }
            };
            let failed = if i % 2 == 0 {
                coll.find_with_ctx(&find_filter, &ctx).is_err()
            } else {
                jagg::aggregate_with_ctx(&coll, &pipes[(i % 4) as usize % pipes.len()].1, &ctx)
                    .is_err()
            };
            if failed {
                storm_failures += 1;
            }
        }
        (contained, storm_failures)
    });
    assert!(
        storm_failures >= 750,
        "S7 gate: the storm must actually fail its queries ({storm_failures}/1000)"
    );
    assert_eq!(
        coll.find(&find_filter),
        base_find,
        "S7 gate: find output changed after the failure storm"
    );
    for ((_, p), base) in pipes.iter().zip(&base_aggs) {
        assert_eq!(
            &jagg::aggregate(&coll, p),
            base,
            "S7 gate: aggregate output changed after the failure storm"
        );
    }
    println!("containment: {contained} injected panics contained; storm: {storm_failures}/1000 failed closed, outputs byte-identical");

    // --- gate 5: uncontended ctx overhead on the S6 workloads ----------
    // The live context carries a far-future deadline: every poll runs the
    // real check (clock read), which is exactly the overhead the <=2%
    // contract covers. Budget *charging* is pay-as-you-go on the charged
    // values and only runs when a budget is set.
    let live = QueryCtx::new().with_timeout(Duration::from_secs(3600));
    let mut overhead_entries = Vec::new();
    // Paired estimator: each rep times base and ctx back to back (order
    // alternating) and the gate runs on the *minimum of per-pair deltas*.
    // Interference on a shared/1-CPU runner is one-sided — a spike lands
    // on one half of a pair and inflates (or deflates) that delta — so
    // medians and best-of-N minima both wobble past 2% under load. A real
    // per-item regression, by contrast, is present in every single pair,
    // so the minimum delta still exposes it while ignoring the spikes.
    // The median delta is what gets *reported* (it is the better central
    // estimate when the machine is quiet).
    let mut gate_overhead = |label: &str, base: &dyn Fn() -> usize, ctx: &dyn Fn() -> usize| {
        assert_eq!(base(), ctx(), "S7 gate: governed output differs on {label}");
        let mut pairs = Vec::with_capacity(31);
        for i in 0..31 {
            let (b, c) = if i % 2 == 0 {
                let b = once_ms(base);
                (b, once_ms(ctx))
            } else {
                let c = once_ms(ctx);
                (once_ms(base), c)
            };
            pairs.push((b, c));
        }
        fn median(mut xs: Vec<f64>) -> f64 {
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        }
        let base_ms = median(pairs.iter().map(|&(b, _)| b).collect());
        let delta_ms = median(pairs.iter().map(|&(b, c)| c - b).collect());
        let min_delta_ms = pairs
            .iter()
            .map(|&(b, c)| c - b)
            .fold(f64::INFINITY, f64::min);
        let ctx_ms = base_ms + delta_ms;
        let pct = delta_ms / base_ms * 100.0;
        // The epsilon absorbs scheduler/timer jitter on the cleanest pair;
        // a real per-item regression lands in all 31 pairs and fails.
        assert!(
            min_delta_ms <= base_ms * 0.02 + 0.25,
            "S7 gate: ctx overhead on {label}: {base_ms:.3} -> {ctx_ms:.3} ms \
             ({pct:+.2}% median, {min_delta_ms:.3} ms min paired delta)"
        );
        println!("overhead: {label} {base_ms:.3} -> {ctx_ms:.3} ms ({pct:+.2}%)");
        overhead_entries.push(format!(
            "    {{\"workload\": \"{label}\", \"base_ms\": {base_ms:.4}, \"ctx_ms\": {ctx_ms:.4}, \"overhead_pct\": {pct:.3}}}"
        ));
    };
    gate_overhead("find_scan", &|| coll.find(&find_filter).len(), &|| {
        coll.find_with_ctx(&find_filter, &live)
            .expect("live ctx never trips")
            .len()
    });
    for ((label, pipe), _) in pipes.iter().zip(&base_aggs) {
        gate_overhead(label, &|| jagg::aggregate(&coll, pipe).len(), &|| {
            jagg::aggregate_with_ctx(&coll, pipe, &live)
                .expect("live ctx never trips")
                .len()
        });
    }

    let grace_json = grace
        .iter()
        .map(|(label, ms)| format!("    {{\"case\": \"{label}\", \"fail_ms\": {ms:.3}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"s7_robustness\",\n  \"units\": \"ms (median of 31 paired base/ctx samples)\",\n  \"gates\": \"asserted: hostile ingestion fails closed; cancelled/expired/starved queries error within {GRACE_MS} ms; injected panics surface as WorkerPanicked with pool reusable; outputs byte-identical after 1000 injected failures; live-ctx overhead (minimum of 31 paired base/ctx deltas) <= 2% + 0.25 ms timer epsilon\",\n  \"threads\": {max_threads},\n  \"ingestion\": {{\"accepted\": {accepted}, \"rejected\": {rejected}}},\n  \"grace_window_ms\": {GRACE_MS},\n  \"grace\": [\n{grace_json}\n  ],\n  \"containment\": {{\"poll_sweep_panics_contained\": {contained}, \"storm_queries\": 1000, \"storm_failed_closed\": {storm_failures}}},\n  \"overhead\": [\n{}\n  ]\n}}\n",
        overhead_entries.join(",\n")
    );
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    println!("wrote BENCH_robustness.json");
}

/// S8 — the static-analysis experiment. Deterministic gates inside the
/// harness:
///
/// 1. the Sym-keyed deterministic sat solver and the frozen string-keyed
///    oracle must agree Sat/Unsat/Unknown on every formula of the shared
///    `jnl::gen` sweeps, and every witness either engine returns must
///    satisfy its formula through the production evaluator;
/// 2. the Sym-keyed engine must not be slower than the string-keyed
///    baseline it replaced (10% timer-noise headroom — both runs are
///    serial, so no CPU-count carve-out is needed);
/// 3. `prune(analyze(..))` must be output-identical to the unpruned
///    pipeline through both executors on every S5 pipeline plus two
///    salted pipelines that carry provably-dead stages (and the salted
///    ones must actually be rewritten — a vacuous prune gates nothing);
/// 4. analyzing **and** pruning a pipeline must cost no more than one
///    execution of it over the 20k-record collection — the break-even
///    bound that makes the analyzer free to run unconditionally.
fn s8() {
    use jstat::Analyze;

    header(
        "S8",
        "Static analysis — Sym vs string sat parity & speed, analyzer overhead, prune equivalence",
    );

    // --- Part 1: sat engine parity and timing on the shared sweeps ---
    let verdict = |r: &jnl::SatResult| match r {
        jnl::SatResult::Sat(_) => "sat",
        jnl::SatResult::Unsat => "unsat",
        jnl::SatResult::Unknown(_) => "unknown",
    };
    println!(
        "{}",
        row(&[
            "sweep".into(),
            "sat/unsat/unk".into(),
            "string ms".into(),
            "sym ms".into(),
            "speedup".into(),
        ])
    );
    let mut sweep_entries = Vec::new();
    for (seed, count, depth) in [(11u64, 400usize, 3usize), (22, 200, 4)] {
        let phis = jnl::gen::formulas(seed, count, depth);
        let (mut n_sat, mut n_unsat, mut n_unk) = (0usize, 0usize, 0usize);
        for phi in &phis {
            let symed = jnl::sat_deterministic(phi);
            let strung = jnl::sat::det_str::sat_deterministic_strings(phi);
            assert_eq!(
                verdict(&symed),
                verdict(&strung),
                "S8 gate: engines disagree on {phi}"
            );
            for (engine, r) in [("sym", &symed), ("string", &strung)] {
                if let jnl::SatResult::Sat(w) = r {
                    let tree = JsonTree::build(w);
                    assert!(
                        jnl::check_root(&tree, phi),
                        "S8 gate: {engine} witness fails its formula {phi}"
                    );
                }
            }
            match symed {
                jnl::SatResult::Sat(_) => n_sat += 1,
                jnl::SatResult::Unsat => n_unsat += 1,
                jnl::SatResult::Unknown(_) => n_unk += 1,
            }
        }
        let str_ms = time_ms(7, || {
            phis.iter()
                .filter(|p| jnl::sat::det_str::sat_deterministic_strings(p).is_sat())
                .count()
        });
        let sym_ms = time_ms(7, || {
            phis.iter()
                .filter(|p| jnl::sat_deterministic(p).is_sat())
                .count()
        });
        assert!(
            sym_ms <= str_ms * 1.10,
            "S8 gate: Sym-keyed sat slower than the string-keyed baseline on sweep {seed}: \
             {sym_ms:.2} ms vs {str_ms:.2} ms"
        );
        let label = format!("seed {seed} depth {depth} ({count} formulas)");
        println!(
            "{}",
            row(&[
                label,
                format!("{n_sat}/{n_unsat}/{n_unk}"),
                format!("{str_ms:.2}"),
                format!("{sym_ms:.2}"),
                format!("{:.2}x", str_ms / sym_ms),
            ])
        );
        sweep_entries.push(format!(
            "    {{\"seed\": {seed}, \"depth\": {depth}, \"formulas\": {count}, \"sat\": {n_sat}, \"unsat\": {n_unsat}, \"unknown\": {n_unk}, \"string_ms\": {str_ms:.3}, \"sym_ms\": {sym_ms:.3}, \"speedup\": {:.3}}}",
            str_ms / sym_ms
        ));
    }

    // --- Part 2: analyzer overhead + prune equivalence on pipelines ---
    let text = s5_collection_text();
    let coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    let docs = coll.docs().to_vec();
    let mut pipes: Vec<(&str, String)> = s5_pipelines()
        .into_iter()
        .map(|(l, s)| (l, s.to_owned()))
        .collect();
    // Salted pipelines: provably-dead work the analyzer must find.
    pipes.push((
        "salted_unsat_prefix",
        r#"[
            {"$match": {"$and": [{"age": 1}, {"age": 2}]}},
            {"$unwind": "$hobbies"},
            {"$group": {"_id": "$hobbies", "n": {"$count": {}}}}
        ]"#
        .to_owned(),
    ));
    pipes.push((
        "salted_shadow_and_sorts",
        r#"[
            {"$match": {"name.last": "Doe"}},
            {"$match": {"name.last": {"$exists": "true"}}},
            {"$sort": {"age": 1}},
            {"$sort": {"age": 1, "name.first": 1}},
            {"$limit": 25}
        ]"#
        .to_owned(),
    ));
    println!(
        "{}",
        row(&[
            "pipeline".into(),
            "diags".into(),
            "analyze ms".into(),
            "exec ms".into(),
            "pruned ms".into(),
        ])
    );
    let mut analyzer_entries = Vec::new();
    for (label, src) in &pipes {
        let pipe = jagg::Pipeline::parse_str(src).expect("workload pipeline parses");
        let report = pipe.analyze(None);
        let pruned = pipe.prune(&report);
        if label.starts_with("salted_") {
            assert!(
                report.has_rewrite(),
                "S8 gate: the salted pipeline {label} was not rewritten\n{report}"
            );
        }
        // Gate 3: prune equivalence through both executors.
        assert_eq!(
            jagg::aggregate(&coll, &pipe),
            jagg::aggregate(&coll, &pruned),
            "S8 gate: prune changed tree-executor output on {label}"
        );
        assert_eq!(
            jagg::reference::aggregate(&docs, &pipe),
            jagg::reference::aggregate(&docs, &pruned),
            "S8 gate: prune changed reference output on {label}"
        );

        let analyze_ms = time_ms(7, || {
            let r = pipe.analyze(None);
            pipe.prune(&r).stages.len()
        });
        let exec_ms = time_ms(7, || jagg::aggregate(&coll, &pipe).len());
        let pruned_ms = time_ms(7, || jagg::aggregate(&coll, &pruned).len());
        // Gate 4: the break-even bound.
        assert!(
            analyze_ms <= exec_ms,
            "S8 gate: analyzing {label} costs more than executing it: \
             {analyze_ms:.3} ms vs {exec_ms:.3} ms"
        );
        println!(
            "{}",
            row(&[
                (*label).into(),
                report.diagnostics.len().to_string(),
                format!("{analyze_ms:.3}"),
                format!("{exec_ms:.2}"),
                format!("{pruned_ms:.2}"),
            ])
        );
        analyzer_entries.push(format!(
            "    {{\"pipeline\": \"{label}\", \"diagnostics\": {}, \"rewritten\": {}, \"analyze_ms\": {analyze_ms:.4}, \"exec_ms\": {exec_ms:.3}, \"pruned_exec_ms\": {pruned_ms:.3}}}",
            report.diagnostics.len(),
            report.has_rewrite(),
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"s8_static_analysis\",\n  \"units\": \"ms (median of 7)\",\n  \"gates\": \"asserted: Sym/string sat verdict agreement with evaluator-verified witnesses; sym_ms <= 1.10 * string_ms; prune output-identical through both executors on every pipeline; salted pipelines rewritten; analyze+prune <= one execution\",\n  \"sat_sweeps\": [\n{}\n  ],\n  \"analyzer\": [\n{}\n  ]\n}}\n",
        sweep_entries.join(",\n"),
        analyzer_entries.join(",\n")
    );
    std::fs::write("BENCH_sat.json", &json).expect("write BENCH_sat.json");
    println!("wrote BENCH_sat.json");
}

/// S9 — the secondary-index experiment: probe-answered `find`/`$match`
/// vs the full scan on the 20k person records, plus layout sweeps.
/// Deterministic gates inside the harness:
///
/// 1. index-answered results must be **byte-identical** to the scan
///    oracle on every workload, on the one-parse layout, the fragmented
///    (per-insert segment) layout, and after `compact()` (the rebuild
///    path);
/// 2. indexed `$eq`/range `find` must not be slower than the scan at
///    20k documents;
/// 3. the selective workload (`eq_unique`, one matching document) must
///    answer at least 2x faster than the scan, at the `find_refs` level
///    and through the `jagg` leading-`$match`.
fn s9() {
    header(
        "S9",
        "Secondary indexes — probe-answered find/$match vs full scan",
    );
    let text = s5_collection_text();
    let scan_coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    let mut coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    let t0 = std::time::Instant::now();
    for p in S9_INDEX_PATHS {
        assert!(coll.create_index(p), "index on {p} declared once");
    }
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "collection: {} documents; indexes on {:?} built in {build_ms:.2} ms",
        coll.len(),
        S9_INDEX_PATHS,
    );

    // Gate 1a: byte-identical to the scan oracle on the fragmented and
    // post-compact layouts (1k docs: the layout sweep is a correctness
    // gate, not a timing).
    {
        let jsondata::Json::Array(docs) = jsondata::gen::person_records(1000, 7) else {
            panic!("person_records returns an array");
        };
        let mut frag = mongofind::Collection::parse_str("[]").expect("empty parses");
        for p in S9_INDEX_PATHS {
            frag.create_index(p);
        }
        for d in &docs {
            frag.insert(d);
        }
        for (label, src) in s9_workloads() {
            let f = mongofind::Filter::parse_str(src).expect("workload filter parses");
            assert_eq!(
                frag.find_refs_indexed(&f),
                frag.find_refs(&f),
                "S9 gate: indexed != scan on fragmented layout, {label}"
            );
        }
        frag.compact();
        for (label, src) in s9_workloads() {
            let f = mongofind::Filter::parse_str(src).expect("workload filter parses");
            assert_eq!(
                frag.find_refs_indexed(&f),
                frag.find_refs(&f),
                "S9 gate: indexed != scan after compact(), {label}"
            );
        }
        println!("layout gate: fragmented + post-compact sweeps byte-identical");
    }

    println!(
        "{}",
        row(&[
            "workload".into(),
            "hits".into(),
            "scan ms".into(),
            "indexed ms".into(),
            "speedup".into(),
        ])
    );
    let mut entries = Vec::new();
    let mut selective_speedup = 0.0_f64;
    for (label, src) in s9_workloads() {
        let f = mongofind::Filter::parse_str(src).expect("workload filter parses");
        assert!(
            coll.index_answerable(&f),
            "S9 workload {label} must engage the planner"
        );
        // Gate 1b: byte-identical refs and documents on the 20k layout.
        let probe_refs = coll.find_refs_indexed(&f);
        assert_eq!(
            probe_refs,
            coll.find_refs(&f),
            "S9 gate: indexed refs != scan refs on {label}"
        );
        assert_eq!(
            coll.find_indexed(&f),
            coll.find(&f),
            "S9 gate: indexed documents != scan documents on {label}"
        );
        let hits = probe_refs.len();
        drop(probe_refs);

        let scan_ms = time_ms(9, || scan_coll.find_refs(&f));
        let indexed_ms = time_ms(9, || coll.find_refs_indexed(&f));
        // Gate 2: probing must not cost wall time against the scan.
        assert!(
            indexed_ms <= scan_ms,
            "S9 gate: indexed find slower than scan on {label}: {indexed_ms:.3} ms vs {scan_ms:.3} ms"
        );
        let speedup = scan_ms / indexed_ms;
        if label == "eq_unique" {
            selective_speedup = speedup;
        }
        println!(
            "{}",
            row(&[
                label.into(),
                hits.to_string(),
                format!("{scan_ms:.3}"),
                format!("{indexed_ms:.3}"),
                format!("{speedup:.1}x"),
            ])
        );
        entries.push(format!(
            "    {{\"workload\": \"{label}\", \"hits\": {hits}, \"scan_ms\": {scan_ms:.4}, \"indexed_ms\": {indexed_ms:.4}, \"speedup\": {speedup:.2}}}"
        ));
    }
    // Gate 3a: the selective workload must win by at least 2x.
    assert!(
        selective_speedup >= 2.0,
        "S9 gate: selective probe speedup {selective_speedup:.2}x < 2x"
    );

    // Gate 3b: the same direction through the jagg leading-$match (the
    // executor routes an index-answerable leading filter to the probe).
    let pipe =
        jagg::Pipeline::parse_str(r#"[{"$match": {"id": 12345}}]"#).expect("match pipeline parses");
    let via_index = jagg::aggregate(&coll, &pipe);
    let via_scan = jagg::aggregate(&scan_coll, &pipe);
    assert_eq!(
        via_index, via_scan,
        "S9 gate: $match output differs between indexed and unindexed collections"
    );
    let match_scan_ms = time_ms(9, || jagg::aggregate(&scan_coll, &pipe));
    let match_indexed_ms = time_ms(9, || jagg::aggregate(&coll, &pipe));
    let match_speedup = match_scan_ms / match_indexed_ms;
    assert!(
        match_speedup >= 2.0,
        "S9 gate: selective $match speedup {match_speedup:.2}x < 2x ({match_indexed_ms:.3} ms vs {match_scan_ms:.3} ms)"
    );
    println!(
        "selective $match via jagg: {match_scan_ms:.3} ms scan, {match_indexed_ms:.3} ms indexed ({match_speedup:.1}x)"
    );

    let json = format!(
        "{{\n  \"experiment\": \"s9_secondary_indexes\",\n  \"units\": \"ms (median of 9)\",\n  \"collection\": {{\"documents\": {}, \"indexes\": [\"id\", \"name.first\", \"age\"], \"build_ms\": {build_ms:.3}}},\n  \"gates\": \"asserted: indexed results byte-identical to scan on one-parse/fragmented/post-compact layouts; indexed find <= scan on every workload; selective eq >= 2x at find_refs level and through the jagg leading-$match\",\n  \"match_pipeline\": {{\"scan_ms\": {match_scan_ms:.4}, \"indexed_ms\": {match_indexed_ms:.4}, \"speedup\": {match_speedup:.2}}},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        coll.len(),
        entries.join(",\n")
    );
    std::fs::write("BENCH_index.json", &json).expect("write BENCH_index.json");
    println!("wrote BENCH_index.json");
}

/// S10 — the observability experiment: the `jtrace` metrics sink, the
/// `EXPLAIN`/`EXPLAIN ANALYZE` plans, and the flight-recorder span log
/// over the whole query stack. Deterministic gates inside the harness:
///
/// 1. **Metrics are ~free.** A metrics-carrying context on the S6
///    workloads (scan find + both pipelines) and the selective S9
///    indexed probe costs at most 2% + 0.25 ms over the metrics-off
///    paths — the same paired-sample protocol as the S7 poll-overhead
///    gate (minimum of 31 alternating-order paired deltas).
/// 2. **EXPLAIN cannot lie.** For every S9 corpus filter plus the
///    supplemental JNL/scan workloads, the route `EXPLAIN` claims is the
///    route the counters prove execution took: an index route records
///    probes and zero scanned documents / visited segments, a JNL route
///    records visited segments and neither of the others, a scan route
///    records scanned documents only — and the routed row count equals
///    the scan oracle's.
/// 3. **EXPLAIN ANALYZE counts right.** On every S5 pipeline the traced
///    executor's per-stage cardinalities (fused blocks expanded) equal
///    the value-based reference executor's, stage for stage.
///
/// The span log rides along: one governed find + aggregate run under a
/// span-recording sink must produce a non-empty Chrome-trace rendering.
fn s10() {
    use std::sync::Arc;

    use jguard::QueryCtx;
    use jtrace::{Counter, QueryMetrics};
    use mongofind::Route;

    header(
        "S10",
        "Observability — metrics overhead, explain/execute agreement, analyze cardinalities",
    );
    let max_threads = jpar::Pool::auto().threads();
    let text = s5_collection_text();
    let mut coll = mongofind::Collection::parse_str(&text).expect("workload parses");
    coll.set_pool(jpar::Pool::with_threads(max_threads));
    let mut icoll = mongofind::Collection::parse_str(&text).expect("workload parses");
    icoll.set_pool(jpar::Pool::with_threads(max_threads));
    for p in S9_INDEX_PATHS {
        assert!(icoll.create_index(p), "index on {p} declared once");
    }
    println!(
        "collection: {} documents, pool: {max_threads} thread(s), indexes on {:?}",
        coll.len(),
        S9_INDEX_PATHS
    );

    // --- gate 2: explain/execute route agreement ----------------------
    println!(
        "{}",
        row(&[
            "workload".into(),
            "route".into(),
            "rows".into(),
            "probes".into(),
            "scanned".into(),
            "segments".into(),
        ])
    );
    let mut route_entries = Vec::new();
    let mut routes_seen = [false; 3];
    for (label, src, expected_route) in s10_route_workloads() {
        let f = mongofind::Filter::parse_str(src).expect("workload filter parses");
        let ex = icoll.explain(&f);
        assert_eq!(
            ex.route.name(),
            expected_route,
            "S10 gate: planner picked an unexpected route on {label}"
        );
        let an = icoll
            .explain_analyze(&f)
            .expect("ungoverned explain_analyze never trips");
        assert_eq!(
            an.plan.route, ex.route,
            "S10 gate: analyze plan route differs from explain on {label}"
        );
        // The routed execution must return exactly what the scan oracle
        // returns.
        assert_eq!(
            an.rows,
            icoll.find_refs(&f).len(),
            "S10 gate: routed row count differs from the scan oracle on {label}"
        );
        let probes = an.counters.get(Counter::IndexProbes);
        let scanned = an.counters.get(Counter::DocsScanned);
        let segments = an.counters.get(Counter::SegmentsVisited);
        // The claimed route must be the one the counters prove ran, with
        // the unchosen routes' counters at zero.
        match ex.route {
            Route::Index => {
                assert!(
                    probes > 0,
                    "S10 gate: index route recorded no probes on {label}"
                );
                assert_eq!(
                    (scanned, segments),
                    (0, 0),
                    "S10 gate: index route touched scan/JNL counters on {label}"
                );
                routes_seen[0] = true;
            }
            Route::Jnl => {
                assert!(
                    segments > 0,
                    "S10 gate: JNL route visited no segments on {label}"
                );
                assert_eq!(
                    (probes, scanned),
                    (0, 0),
                    "S10 gate: JNL route touched index/scan counters on {label}"
                );
                routes_seen[1] = true;
            }
            Route::Scan => {
                assert!(
                    scanned > 0,
                    "S10 gate: scan route scanned no documents on {label}"
                );
                assert_eq!(
                    (probes, segments),
                    (0, 0),
                    "S10 gate: scan route touched index/JNL counters on {label}"
                );
                routes_seen[2] = true;
            }
        }
        println!(
            "{}",
            row(&[
                label.into(),
                ex.route.name().into(),
                an.rows.to_string(),
                probes.to_string(),
                scanned.to_string(),
                segments.to_string(),
            ])
        );
        route_entries.push(Val::obj(vec![
            ("workload", Val::str(label)),
            ("route", Val::str(ex.route.name())),
            ("rows", Val::int(an.rows as u64)),
            ("index_probes", Val::int(probes)),
            ("docs_scanned", Val::int(scanned)),
            ("segments_visited", Val::int(segments)),
            ("plan", Val::Raw(ex.to_json().to_string())),
        ]));
    }
    assert!(
        routes_seen.iter().all(|&b| b),
        "S10 gate: the route corpus must exercise index, JNL and scan"
    );
    println!("route gate: every claimed route proven by its counters, all three routes exercised");

    // --- gate 3: EXPLAIN ANALYZE vs reference cardinalities -----------
    let docs = coll.docs().to_vec();
    let mut analyze_entries = Vec::new();
    for (label, src) in s5_pipelines() {
        let pipe = jagg::Pipeline::parse_str(src).expect("workload pipeline parses");
        let an =
            jagg::explain_analyze(&coll, &pipe).expect("ungoverned explain_analyze never trips");
        let expected = jagg::reference::stage_cardinalities(&docs, &pipe);
        let got: Vec<usize> = an.stages.iter().map(|s| s.rows_out).collect();
        assert_eq!(
            got, expected,
            "S10 gate: traced cardinalities differ from the reference on {label}"
        );
        assert_eq!(
            an.rows,
            *expected.last().expect("pipelines are non-empty"),
            "S10 gate: output row count differs from the final cardinality on {label}"
        );
        let fused = an.plan.stages.iter().filter(|s| s.fused).count();
        println!("analyze: {label}: stage rows {got:?} == reference ({fused} fused stage(s))");
        analyze_entries.push(Val::obj(vec![
            ("pipeline", Val::str(label)),
            (
                "stage_rows",
                Val::Arr(got.iter().map(|&n| Val::int(n as u64)).collect()),
            ),
            ("fused_stages", Val::int(fused as u64)),
            ("wall_us", Val::int(an.wall_us)),
        ]));
    }

    // --- gate 1: metrics overhead on the S6 + selective S9 workloads --
    fn once_ms<T>(f: impl FnOnce() -> T) -> f64 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        t0.elapsed().as_secs_f64() * 1e3
    }
    let sink = Arc::new(QueryMetrics::new());
    let mctx = QueryCtx::new().with_metrics(Arc::clone(&sink));
    let mut overhead_entries = Vec::new();
    // The S7 paired estimator: each rep times metrics-off and metrics-on
    // back to back in alternating order, and the gate runs on the
    // minimum of per-pair deltas — one-sided interference spikes inflate
    // individual pairs, but a real per-record regression is present in
    // every pair, so the minimum still exposes it.
    let mut gate_overhead = |label: &str, base: &dyn Fn() -> usize, inst: &dyn Fn() -> usize| {
        assert_eq!(
            base(),
            inst(),
            "S10 gate: metrics changed output on {label}"
        );
        let mut pairs = Vec::with_capacity(31);
        for i in 0..31 {
            let (b, c) = if i % 2 == 0 {
                let b = once_ms(base);
                (b, once_ms(inst))
            } else {
                let c = once_ms(inst);
                (once_ms(base), c)
            };
            pairs.push((b, c));
        }
        fn median(mut xs: Vec<f64>) -> f64 {
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        }
        let base_ms = median(pairs.iter().map(|&(b, _)| b).collect());
        let delta_ms = median(pairs.iter().map(|&(b, c)| c - b).collect());
        let min_delta_ms = pairs
            .iter()
            .map(|&(b, c)| c - b)
            .fold(f64::INFINITY, f64::min);
        let ctx_ms = base_ms + delta_ms;
        let pct = delta_ms / base_ms * 100.0;
        assert!(
            min_delta_ms <= base_ms * 0.02 + 0.25,
            "S10 gate: metrics overhead on {label}: {base_ms:.3} -> {ctx_ms:.3} ms \
             ({pct:+.2}% median, {min_delta_ms:.3} ms min paired delta)"
        );
        println!("overhead: {label} {base_ms:.3} -> {ctx_ms:.3} ms ({pct:+.2}%)");
        overhead_entries.push(Val::obj(vec![
            ("workload", Val::str(label)),
            ("base_ms", Val::float(base_ms, 4)),
            ("metrics_ms", Val::float(ctx_ms, 4)),
            ("overhead_pct", Val::float(pct, 3)),
        ]));
    };
    let find_filter = mongofind::Filter::parse_str(S6_FIND_FILTER).expect("filter parses");
    gate_overhead("find_scan", &|| coll.find(&find_filter).len(), &|| {
        coll.find_with_ctx(&find_filter, &mctx)
            .expect("metrics ctx never trips")
            .len()
    });
    for (label, src) in s6_pipelines() {
        let pipe = jagg::Pipeline::parse_str(src).expect("workload pipeline parses");
        gate_overhead(label, &|| jagg::aggregate(&coll, &pipe).len(), &|| {
            jagg::aggregate_with_ctx(&coll, &pipe, &mctx)
                .expect("metrics ctx never trips")
                .len()
        });
    }
    let probe_filter =
        mongofind::Filter::parse_str(r#"{"name.first": "Sue"}"#).expect("filter parses");
    gate_overhead(
        "indexed_probe",
        &|| icoll.find_refs_routed(&probe_filter).len(),
        &|| {
            icoll
                .find_refs_routed_with_ctx(&probe_filter, &mctx)
                .expect("metrics ctx never trips")
                .len()
        },
    );

    // --- the flight recorder: one spanned run, dumped as Chrome trace --
    let span_sink = Arc::new(QueryMetrics::with_spans(4096));
    let sctx = QueryCtx::new().with_metrics(Arc::clone(&span_sink));
    let pipe = jagg::Pipeline::parse_str(s6_pipelines()[0].1).expect("pipeline parses");
    jagg::aggregate_with_ctx(&icoll, &pipe, &sctx).expect("span ctx never trips");
    icoll
        .find_refs_routed_with_ctx(&probe_filter, &sctx)
        .expect("span ctx never trips");
    let spans = span_sink.spans().expect("sink was built with a span log");
    let trace = spans.to_chrome_trace();
    assert!(
        spans.recorded() > 0 && trace.starts_with("{\"traceEvents\":["),
        "S10 gate: the span log recorded nothing"
    );
    println!(
        "span log: {} events recorded, {} dropped, chrome trace {} bytes",
        spans.recorded(),
        spans.dropped(),
        trace.len()
    );

    let report = Val::obj(vec![
        ("experiment", Val::str("s10_observability")),
        (
            "units",
            Val::str("ms (median of 31 paired metrics-off/metrics-on samples)"),
        ),
        (
            "gates",
            Val::str(
                "asserted: metrics-on overhead (minimum of 31 paired deltas) <= 2% + 0.25 ms \
                 on the S6 workloads and the selective indexed probe; every EXPLAIN route \
                 proven by its execution counters with unchosen routes at zero and rows equal \
                 to the scan oracle; EXPLAIN ANALYZE per-stage cardinalities equal the \
                 reference executor's on every S5 pipeline; span log non-empty",
            ),
        ),
        ("threads", Val::int(max_threads as u64)),
        ("overhead", Val::Arr(overhead_entries)),
        ("routes", Val::Arr(route_entries)),
        ("analyze", Val::Arr(analyze_entries)),
        (
            "span_log",
            Val::obj(vec![
                ("recorded", Val::int(spans.recorded())),
                ("dropped", Val::int(spans.dropped())),
                ("chrome_trace_bytes", Val::int(trace.len() as u64)),
            ]),
        ),
    ]);
    jsonout::write("BENCH_observability.json", &report);
}

/// S11 — the serving experiment: the `jserve` multi-tenant core under a
/// concurrent storm. Deterministic gates inside the harness:
///
/// 1. **Snapshot linearizability.** N client threads run a find/
///    aggregate/insert mix (with background compactions racing the
///    writers) and record every read result with the epoch of the
///    snapshot that produced it. Afterwards the committed log prefix of
///    each observed epoch is replayed serially onto the seed collection
///    and re-queried single-threaded: every concurrent observation must
///    be byte-identical to its serial replay.
/// 2. **Zero aborts under fault storms.** Hundreds of requests carrying
///    injected `Fault::PanicAtPoll` / `Fault::SleepAtPoll` faults (the
///    latter against a 50 ms tenant deadline) must all come back as
///    `Ok` or a *typed* `QueryError` — panics contained at the serve
///    boundary, deadlines enforced, no permit leaked, and the server
///    fully serviceable afterwards.
/// 3. **The persistent pool earns its keep.** The same S6 µs-scale find
///    under `Dispatch::Park` (persistent parked helpers) must not be
///    slower than `Dispatch::Spawn` (per-scope thread spawn), best of
///    61 interleaved samples, small noise tolerance.
fn s11() {
    use std::time::Duration;

    use jguard::{Fault, QueryError, RetryPolicy};
    use jserve::{AdmissionConfig, Request, Response, Server, TenantSpec};

    header(
        "S11",
        "Serving — snapshot linearizability, fault storms, admission, persistent pool",
    );
    let max_threads = jpar::Pool::auto().threads();
    let text = s5_collection_text();
    let mut seed = mongofind::Collection::parse_str(&text).expect("workload parses");
    seed.set_pool(jpar::Pool::with_threads(max_threads));
    println!(
        "collection: {} documents, pool: {max_threads} thread(s), dispatch: {:?}",
        seed.len(),
        seed.pool().dispatch()
    );

    let server = Server::new(
        seed,
        AdmissionConfig {
            max_inflight: max_threads.max(2) * 2,
            queue_cap: 256,
            max_queue_wait: Duration::from_millis(500),
        },
    );
    assert!(server.register_tenant(TenantSpec::new("readers")));
    assert!(server.register_tenant(TenantSpec::new("writer")));

    let find_req = Request::Find {
        filter: S6_FIND_FILTER.into(),
    };
    let agg_src = s6_pipelines()[0].1;
    let agg_req = Request::Aggregate {
        pipeline: agg_src.into(),
    };
    let render = |docs: &[jsondata::Json]| -> String {
        let parts: Vec<String> = docs.iter().map(|d| d.to_string()).collect();
        parts.join("\n")
    };

    // --- gate 1: concurrent storm + serial replay ---------------------
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 50;
    let mut shed = 0u64;
    let mut inserts = 0u64;
    let mut compactions = 0u64;
    let mut observations: Vec<(u64, usize, String)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let server = &server;
            let find_req = &find_req;
            let agg_req = &agg_req;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(u64, usize, String)> = Vec::new();
                let mut my_shed = 0u64;
                let mut my_inserts = 0u64;
                for r in 0..ROUNDS {
                    if r % 5 == t {
                        let doc = format!(
                            r#"{{"id": {}, "name": {{"first": "S{t}", "last": "Storm"}}, "age": {}}}"#,
                            100_000 + t * ROUNDS + r,
                            (r * 7 + t) % 90
                        );
                        // Overloaded is retryable by contract; the
                        // jguard backoff helper is the serving-side way
                        // to ride out a burst.
                        match jguard::retry_with_backoff(RetryPolicy::default(), || {
                            server.serve("writer", &Request::Insert { doc: doc.clone() })
                        }) {
                            Ok(Response::Inserted { .. }) => my_inserts += 1,
                            Ok(other) => panic!("insert returned {other:?}"),
                            Err(QueryError::Overloaded) => my_shed += 1,
                            Err(e) => panic!("S11: insert failed with {e}"),
                        }
                    }
                    for (which, req) in [(0usize, find_req), (1, agg_req)] {
                        match server.serve("readers", req) {
                            Ok(Response::Docs { epoch, docs }) => {
                                local.push((epoch, which, render(&docs)));
                            }
                            Ok(other) => panic!("read verb returned {other:?}"),
                            Err(QueryError::Overloaded) => my_shed += 1,
                            Err(e) => panic!("S11: storm hit a non-admission error: {e}"),
                        }
                    }
                }
                (local, my_shed, my_inserts)
            }));
        }
        let compactor = scope.spawn(|| {
            let mut done = 0u64;
            for _ in 0..8 {
                if server.store().compact() {
                    done += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            done
        });
        for h in handles {
            let (local, my_shed, my_inserts) = h.join().expect("client thread never panics");
            observations.extend(local);
            shed += my_shed;
            inserts += my_inserts;
        }
        compactions = compactor.join().expect("compactor never panics");
    });

    observations.sort_by_key(|a| a.0);
    let mut replay = mongofind::Collection::parse_str(&text).expect("workload parses");
    replay.set_pool(jpar::Pool::serial());
    let find_filter = mongofind::Filter::parse_str(S6_FIND_FILTER).expect("filter parses");
    let agg_pipe = jagg::Pipeline::parse_str(agg_src).expect("pipeline parses");
    let log = server.store().log_prefix(usize::MAX);
    assert_eq!(log.len() as u64, inserts, "commit log holds every insert");
    let mut replayed = 0usize;
    let mut cached: Option<(u64, [String; 2])> = None;
    let mut epochs_checked = 0u64;
    for (epoch, which, rendered) in &observations {
        while (replayed as u64) < *epoch {
            replay
                .insert_str(&log[replayed])
                .expect("committed log entries replay");
            replayed += 1;
        }
        let fresh = !matches!(&cached, Some((e, _)) if e == epoch);
        if fresh {
            cached = Some((
                *epoch,
                [
                    render(&replay.find(&find_filter)),
                    render(&jagg::aggregate(&replay, &agg_pipe)),
                ],
            ));
            epochs_checked += 1;
        }
        let (_, expect) = cached.as_ref().expect("just filled");
        assert_eq!(
            rendered, &expect[*which],
            "S11 gate: concurrent result at epoch {epoch} differs from its serial replay"
        );
    }
    println!(
        "linearizability: {} observations across {} epochs byte-identical to serial replay \
         ({} inserts committed, {} compactions published, {} requests shed)",
        observations.len(),
        epochs_checked,
        inserts,
        compactions,
        shed
    );
    assert!(
        !observations.is_empty(),
        "S11 gate: the storm produced no observations"
    );

    // --- gate 2: fault storm, typed errors only -----------------------
    let mut chaos = TenantSpec::new("chaos");
    chaos.timeout = Some(Duration::from_millis(50));
    assert!(server.register_tenant(chaos));
    const FAULTS: u64 = 200;
    let mut ok = 0u64;
    let mut contained = 0u64;
    let mut deadlines = 0u64;
    let mut fault_shed = 0u64;
    jguard::with_quiet_panics(|| {
        for i in 0..FAULTS {
            let fault = if i % 2 == 0 {
                Fault::PanicAtPoll(1 + i % 7)
            } else {
                Fault::SleepAtPoll { at: 1, millis: 100 }
            };
            let req = if i % 3 == 0 { &agg_req } else { &find_req };
            match server.serve_with_fault("chaos", req, fault) {
                Ok(_) => ok += 1,
                Err(QueryError::WorkerPanicked { .. }) => contained += 1,
                Err(QueryError::Deadline) => deadlines += 1,
                Err(QueryError::Overloaded) => fault_shed += 1,
                Err(e) => panic!("S11 gate: fault storm produced an unexpected error: {e}"),
            }
        }
    });
    assert!(
        contained > 0,
        "S11 gate: no injected panic reached the containment boundary"
    );
    assert!(
        deadlines > 0,
        "S11 gate: no injected sleep tripped the tenant deadline"
    );
    assert_eq!(
        server.admission().inflight(),
        0,
        "S11 gate: the fault storm leaked admission permits"
    );
    let Ok(Response::Docs { docs, .. }) = server.serve("readers", &find_req) else {
        panic!("S11 gate: server unserviceable after the fault storm")
    };
    assert!(!docs.is_empty());
    println!(
        "fault storm: {FAULTS} injected ({ok} ok, {contained} panics contained, \
         {deadlines} deadlines, {fault_shed} shed), zero aborts, zero leaked permits"
    );

    // --- gate 3: persistent pool vs per-scope spawn -------------------
    fn once_ms<T>(f: impl FnOnce() -> T) -> f64 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        t0.elapsed().as_secs_f64() * 1e3
    }
    let mut pcoll = mongofind::Collection::parse_str(&text).expect("workload parses");
    pcoll.set_pool(jpar::Pool::with_threads(max_threads).with_dispatch(jpar::Dispatch::Park));
    let mut scoll = mongofind::Collection::parse_str(&text).expect("workload parses");
    scoll.set_pool(jpar::Pool::with_threads(max_threads).with_dispatch(jpar::Dispatch::Spawn));
    let park_out = pcoll.find(&find_filter);
    let spawn_out = scoll.find(&find_filter);
    assert_eq!(
        park_out, spawn_out,
        "S11 gate: dispatch strategies disagree on results"
    );
    let (mut park_ms, mut spawn_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..61 {
        park_ms = park_ms.min(once_ms(|| pcoll.find(&find_filter)));
        spawn_ms = spawn_ms.min(once_ms(|| scoll.find(&find_filter)));
    }
    // With real helpers in play the persistent pool must win (spawn pays
    // thread creation per call); at 1 thread both paths are the same
    // inline code and only noise separates them.
    let tolerance = if max_threads > 1 { 1.05 } else { 1.15 };
    assert!(
        park_ms <= spawn_ms * tolerance,
        "S11 gate: persistent pool ({park_ms:.4} ms) slower than per-scope spawn \
         ({spawn_ms:.4} ms, tolerance {tolerance}x)"
    );
    println!(
        "dispatch: park {park_ms:.4} ms vs spawn {spawn_ms:.4} ms on the S6 find \
         ({:.2}x, best of 61 interleaved)",
        spawn_ms / park_ms
    );

    let report = Val::obj(vec![
        ("experiment", Val::str("s11_serving")),
        ("units", Val::str("ms (best of 61 interleaved samples)")),
        (
            "gates",
            Val::str(
                "asserted: every concurrent read byte-identical to the serial replay of its \
                 snapshot's committed log prefix (storms + compactions racing); fault storm \
                 of injected panics/sleeps yields typed errors only with zero aborts and \
                 zero leaked permits, server serviceable after; persistent park-dispatch \
                 pool <= per-scope spawn on the S6 find workload",
            ),
        ),
        ("threads", Val::int(max_threads as u64)),
        (
            "storm",
            Val::obj(vec![
                ("clients", Val::int(CLIENTS as u64)),
                ("rounds", Val::int(ROUNDS as u64)),
                ("observations", Val::int(observations.len() as u64)),
                ("epochs_checked", Val::int(epochs_checked)),
                ("inserts", Val::int(inserts)),
                ("compactions", Val::int(compactions)),
                ("shed", Val::int(shed)),
            ]),
        ),
        (
            "faults",
            Val::obj(vec![
                ("injected", Val::int(FAULTS)),
                ("ok", Val::int(ok)),
                ("panics_contained", Val::int(contained)),
                ("deadlines", Val::int(deadlines)),
                ("shed", Val::int(fault_shed)),
            ]),
        ),
        (
            "dispatch",
            Val::obj(vec![
                ("park_ms", Val::float(park_ms, 4)),
                ("spawn_ms", Val::float(spawn_ms, 4)),
                ("speedup", Val::float(spawn_ms / park_ms, 2)),
            ]),
        ),
    ]);
    jsonout::write("BENCH_serving.json", &report);
}
